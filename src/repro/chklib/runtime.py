"""The checkpointing runtime: wires application, scheme, machine and faults.

:class:`CheckpointRuntime` is the reproduction's equivalent of launching a
CHK-LIB application on the Xplorer: it builds the simulated machine, one
communicator per rank (with the scheme's agent attached), starts one SPMD
driver process per rank, runs the checkpoint schedule, optionally injects
crashes and executes rollback + re-execution, and returns a
:class:`RunReport` with everything the experiments need.

Recovery semantics (both classes of schemes, as in the paper): a failure
takes down the whole application; every process rolls back to the scheme's
recovery line, channel state / logged in-transit messages are re-injected,
send sequence counters rewind so re-executed sends reuse their original
sequence numbers, and duplicate deliveries are suppressed — under the
piecewise-deterministic execution contract the re-run reproduces the
original results exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Sequence

import dataclasses as _dc

from ..core.engine import Engine
from ..core.errors import Interrupt
from ..core.events import Event
from ..core.process import Process
from ..core.rng import RngStreams
from ..core.tracing import Tracer
from ..machine.cluster import Cluster
from ..machine.params import MachineParams
from ..net.api import Comm
from ..net.transport import Transport
from .schemes.base import NoCheckpointing, Scheme
from .storage_mgr import CheckpointStore

__all__ = ["CheckpointRuntime", "Ctx", "RunReport", "RecoveryEvent", "FaultPlan"]


@dataclass(frozen=True)
class FaultPlan:
    """When to crash the machine (whole-application failures)."""

    crash_times: Sequence[float] = ()

    @staticmethod
    def single(at: float) -> "FaultPlan":
        return FaultPlan(crash_times=(float(at),))


@dataclass
class RecoveryEvent:
    """What one crash + rollback cost."""

    crash_time: float
    line_indices: Dict[int, int]
    rollback_checkpoints: Dict[int, int]  #: checkpoints lost per rank
    lost_time: Dict[int, float]  #: sim-seconds of work discarded per rank
    replayed_messages: int
    duration: float  #: crash -> all drivers restarted
    domino_extent: float  #: fraction of ranks pushed to the initial state


@dataclass
class RunReport:
    """Everything measured in one run."""

    app: str
    scheme: str
    n_nodes: int
    seed: int
    sim_time: float
    result: Any
    checkpoints_taken: int
    checkpoints_committed: int
    blocked_time: float  #: total app-blocked time across ranks
    storage_bytes_written: float
    storage_peak_bytes: int
    storage_peak_checkpoints: int
    storage_final_bytes: int
    control_messages: int
    control_bytes: int
    app_messages: int
    app_bytes: int
    counters: Dict[str, float] = field(default_factory=dict)
    recoveries: List[RecoveryEvent] = field(default_factory=list)

    @property
    def overhead_vs(self) -> Any:  # pragma: no cover - convenience stub
        raise AttributeError("use repro.analysis.metrics.overhead()")


class Ctx:
    """Per-rank execution context handed to the application."""

    __slots__ = ("runtime", "rank", "size", "comm", "node", "engine", "_agent")

    def __init__(self, runtime: "CheckpointRuntime", rank: int) -> None:
        self.runtime = runtime
        self.rank = rank
        self.size = runtime.n_ranks
        self.comm = runtime.comms[rank]
        self.node = runtime.cluster.node(rank)
        self.engine = runtime.engine
        self._agent = runtime.agents[rank]

    @property
    def now(self) -> float:
        return self.engine.now

    def compute(self, flops: float) -> Generator[Event, Any, None]:
        """Burn CPU time for *flops* of work (``yield from``)."""
        return self.node.compute(flops)

    def checkpoint_point(self) -> Generator[Event, Any, None]:
        """Declare a safe point: a pending checkpoint is taken here."""
        return self._agent.at_point()


class CheckpointRuntime:
    """One application run on one machine under one checkpointing scheme."""

    def __init__(
        self,
        app: Any,
        scheme: Optional[Scheme] = None,
        machine: Optional[MachineParams] = None,
        seed: int = 0,
        fault_plan: Optional[FaultPlan] = None,
        trace: bool = True,
    ) -> None:
        self.app = app
        self.engine = Engine()
        self.tracer = Tracer(self.engine, enabled=trace)
        self.machine_params = machine or MachineParams.xplorer8()
        self.cluster = Cluster(self.engine, self.machine_params, tracer=self.tracer)
        self.n_ranks = self.cluster.n_nodes
        self.transport = Transport(self.cluster, tracer=self.tracer)
        self.storage = self.cluster.storage
        self.store = CheckpointStore(self.n_ranks)
        self.scheme = scheme or NoCheckpointing()
        self.seed = int(seed)
        self.rngs = RngStreams(seed)
        self.fault_plan = fault_plan
        #: bumped on every recovery; stale wire messages are dropped by it.
        self.generation = 0
        self.recoveries: List[RecoveryEvent] = []
        self.agents = [
            self.scheme.make_agent(self, r) for r in range(self.n_ranks)
        ]
        self.comms = [
            Comm(self.transport, r, self.n_ranks, agent=self.agents[r])
            for r in range(self.n_ranks)
        ]
        for agent, comm in zip(self.agents, self.comms):
            agent.bind(comm)
        self._gen_procs: List[Process] = []
        self._finished: Dict[int, Any] = {}
        self._done: Event = self.engine.event()
        self._result: Any = None
        self._ran = False

    # -- public API ---------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._done.triggered

    def run(self) -> RunReport:
        """Execute to completion (including any scheduled crashes)."""
        if self._ran:
            raise RuntimeError("a CheckpointRuntime instance runs only once")
        self._ran = True
        self.scheme.install(self)
        if self.fault_plan is not None and self.fault_plan.crash_times:
            self.engine.process(self._injector(), name="fault-injector")
        self._start_generation({r: None for r in range(self.n_ranks)})
        self.engine.run(until=self._done)
        return self._report()

    def spawn(self, generator, name: str = "") -> Process:
        """Start a generation-scoped helper process (killed on crash)."""
        proc = self.engine.process(generator, name=name)
        self._gen_procs.append(proc)
        return proc

    # -- drivers ---------------------------------------------------------------

    def _start_generation(self, states: Dict[int, Optional[dict]]) -> None:
        self._finished = {}
        for rank in range(self.n_ranks):
            state = states[rank]
            if state is None:
                state = self.app.make_state(rank, self.n_ranks, self.seed)
            proc = self.engine.process(
                self._driver(rank, state, self.generation),
                name=f"app:r{rank}:g{self.generation}",
            )
            self._gen_procs.append(proc)

    def _driver(self, rank: int, state: dict, generation: int):
        agent = self.agents[rank]
        agent.bind_state(state)
        ctx = Ctx(self, rank)
        try:
            result = yield from self.app.run(ctx, state)
        except Interrupt:
            return None  # crashed; a recovery restarts this rank
        if generation != self.generation:
            return None  # stale completion racing a recovery
        # a finished process still checkpoints (immediately) on request
        agent.mark_finished()
        self._finished[rank] = result
        if rank == 0:
            self._result = result
        if len(self._finished) == self.n_ranks:
            self._done.succeed()
        return result

    # -- failure injection & recovery -----------------------------------------------

    def _injector(self):
        assert self.fault_plan is not None
        for t in sorted(self.fault_plan.crash_times):
            if t > self.engine.now:
                yield self.engine.timeout(t - self.engine.now)
            if self.finished:
                return
            yield from self._recover()

    def _recover(self):
        engine = self.engine
        t_crash = engine.now
        self.tracer.add("fault.crashes")
        iters_at_crash = {
            r: (self.agents[r].state_ref or {}).get("iter", 0)
            for r in range(self.n_ranks)
        }
        cuts_before = {r: self.agents[r].epoch for r in range(self.n_ranks)}
        # 1. the crash: kill every process of the current generation.
        self.generation += 1
        for proc in self._gen_procs:
            proc.defused = True
            if proc.is_alive:
                proc.interrupt("machine failure")
        self._gen_procs = []
        for comm in self.comms:
            comm.reset_mailbox()
        self.scheme.on_crash(self)
        # 2. decide the recovery line and drop everything newer.
        line = self.scheme.recovery_line(self)
        line_idx = {
            r: (rec.index if rec is not None else 0) for r, rec in line.items()
        }
        for rank, idx in line_idx.items():
            for stale in [
                i for i in range(idx + 1, self.store.latest_index(rank) + 1)
            ]:
                try:
                    self.store.discard(rank, stale)
                except KeyError:
                    pass
        replay = self.scheme.replay_messages(self, line)
        # 3. read the surviving states back from stable storage (concurrent).
        two_level = getattr(self.scheme, "two_level", False)
        readers = []
        for rank, rec in line.items():
            if rec is not None:
                # incremental chains are read back whole (base + deltas);
                # two-level storage restores from the (surviving) local
                # disks in parallel instead of queueing at the global server
                nbytes = self.store.restore_read_bytes(rank, rec.index)
                source = (
                    self.cluster.local_disk(rank) if two_level else self.storage
                )
                readers.append(
                    engine.process(
                        source.read(
                            self.cluster.node(rank),
                            nbytes,
                            tag=f"restore:r{rank}",
                        ),
                        name=f"restore:r{rank}",
                    )
                )
        if readers:
            self.cluster.set_all_blocked(True)  # the machine is quiescent
            try:
                yield engine.all_of(readers)
            finally:
                self.cluster.set_all_blocked(False)
        # 4. restore per-rank state, counters, epochs.
        states: Dict[int, Optional[dict]] = {}
        for rank, rec in line.items():
            if rec is not None:
                states[rank] = rec.snapshot.restore()
                self.comms[rank].restore_meta(rec.comm_meta)
                self.agents[rank].reset_for_recovery(epoch=rec.index)
            else:
                states[rank] = None  # rebuilt from make_state (deterministic)
                self.comms[rank].restore_meta(
                    {"sent": {}, "consumed": {}, "coll_counter": 0}
                )
                self.agents[rank].reset_for_recovery(epoch=0)
        # 5. re-inject in-transit channel state, in per-channel seq order.
        for msg in sorted(replay, key=lambda m: (m.dst, m.src, m.seq)):
            clone = _dc.replace(msg, meta=dict(msg.meta))
            clone.meta["gen"] = self.generation
            self.transport.deliver_local(clone)
        # 6. restart the application.
        self._start_generation(states)
        event = RecoveryEvent(
            crash_time=t_crash,
            line_indices=line_idx,
            # checkpoints discarded per rank: how far the line regressed
            # below the rank's checkpoint count at crash time
            rollback_checkpoints={
                r: max(0, cuts_before[r] - line_idx[r]) for r in line_idx
            },
            lost_time={
                r: (t_crash - line[r].taken_at) if line[r] is not None else t_crash
                for r in line
            },
            replayed_messages=len(replay),
            duration=engine.now - t_crash,
            domino_extent=(
                sum(1 for i in line_idx.values() if i == 0) / self.n_ranks
            ),
        )
        self.recoveries.append(event)
        self.tracer.add("fault.recovery_time", event.duration)

    # -- reporting -------------------------------------------------------------------

    def _report(self) -> RunReport:
        return RunReport(
            app=getattr(self.app, "name", type(self.app).__name__),
            scheme=self.scheme.name,
            n_nodes=self.n_ranks,
            seed=self.seed,
            sim_time=self.engine.now,
            result=self._result,
            checkpoints_taken=sum(a.cuts_taken for a in self.agents),
            checkpoints_committed=int(self.tracer.get("chk.commits")),
            blocked_time=sum(a.blocked_time for a in self.agents),
            storage_bytes_written=self.storage.bytes_written,
            storage_peak_bytes=self.store.peak_bytes,
            storage_peak_checkpoints=self.store.peak_checkpoints,
            storage_final_bytes=self.store.total_bytes(),
            control_messages=self.transport.control_messages,
            control_bytes=self.transport.control_bytes,
            app_messages=self.transport.messages_sent,
            app_bytes=self.transport.bytes_sent,
            counters=dict(self.tracer.counters),
            recoveries=list(self.recoveries),
        )
