"""The checkpointing library — the paper's primary contribution.

Snapshots, the stable-storage checkpoint manager, coordinated and
independent schemes, recovery-line computation, rollback-dependency
analysis, garbage collection, message logging and the runtime that ties an
application, a scheme and a machine together.
"""

from .dependency import line_via_graph, rollback_dependency_graph
from .garbage import GcStats, collect_garbage
from .recovery import (
    CutPoint,
    build_cuts,
    consistent_line,
    covered_index_line,
    domino_extent,
    in_transit_ranges,
    is_consistent,
    rollback_distances,
)
from .policy import (
    CheckpointPolicy,
    FailureRateAdaptive,
    FixedTimes,
    Periodic,
    PhaseTriggered,
    StoragePressure,
    build_policy,
    policy_spec,
)
from .resume import DurableLine
from .retry import stable_read, stable_write
from .runtime import (
    CheckpointRuntime,
    Ctx,
    FaultModel,
    FaultPlan,
    RecoveryEvent,
    RetryPolicy,
    RunReport,
)
from .schemes import (
    REGISTRY,
    CICScheme,
    CoordinatedScheme,
    IndependentScheme,
    MessageLoggingScheme,
    NoCheckpointing,
    ProtocolFamily,
    ProtocolRegistry,
    Scheme,
    SchemeAgent,
)
from .state import Snapshot, state_nbytes
from .storage_mgr import CheckpointRecord, CheckpointStore

__all__ = [
    "CheckpointRuntime",
    "Ctx",
    "FaultPlan",
    "FaultModel",
    "RetryPolicy",
    "RunReport",
    "RecoveryEvent",
    "DurableLine",
    "CheckpointPolicy",
    "FixedTimes",
    "Periodic",
    "PhaseTriggered",
    "FailureRateAdaptive",
    "StoragePressure",
    "policy_spec",
    "build_policy",
    "stable_write",
    "stable_read",
    "Scheme",
    "SchemeAgent",
    "NoCheckpointing",
    "CoordinatedScheme",
    "IndependentScheme",
    "CICScheme",
    "MessageLoggingScheme",
    "ProtocolFamily",
    "ProtocolRegistry",
    "REGISTRY",
    "Snapshot",
    "state_nbytes",
    "CheckpointRecord",
    "CheckpointStore",
    "CutPoint",
    "build_cuts",
    "consistent_line",
    "covered_index_line",
    "is_consistent",
    "in_transit_ranges",
    "rollback_distances",
    "domino_extent",
    "rollback_dependency_graph",
    "line_via_graph",
    "collect_garbage",
    "GcStats",
]
