"""Incremental checkpointing: page-level dirty tracking.

The classic overhead reducer the paper's related work credits to Elnozahy
et al. [13]: instead of writing the full process image every time, write
only the pages that changed since the previous checkpoint (plus a periodic
full checkpoint so recovery chains stay short).

Dirtiness is *measured, not modelled*: the serialized process state is
split into fixed-size pages and hashed; a page is dirty iff its hash
differs from the previous checkpoint's. In-place NumPy mutation keeps the
pickle layout stable, so page hashes track genuine application write
patterns (SOR touches every interior page per iteration; TSP's search
state barely moves).

Recovery must read the whole chain back to the last full checkpoint; the
storage manager keeps that chain alive (commit/GC must not collect a base
a newer increment still needs).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = ["PAGE_SIZE", "page_hashes", "dirty_pages", "IncrementalState"]

#: classic 4 KiB pages.
PAGE_SIZE = 4096


def page_hashes(blob: bytes, page_size: int = PAGE_SIZE) -> Tuple[bytes, ...]:
    """Fixed-size page digests of a serialized state."""
    if page_size <= 0:
        raise ValueError(f"page size must be positive, got {page_size}")
    return tuple(
        hashlib.blake2b(blob[i : i + page_size], digest_size=8).digest()
        for i in range(0, len(blob), page_size)
    )


def dirty_pages(
    old: Tuple[bytes, ...], new: Tuple[bytes, ...]
) -> int:
    """Number of pages of *new* that differ from *old* (size changes count
    as dirty)."""
    dirty = sum(1 for a, b in zip(old, new) if a != b)
    dirty += abs(len(new) - len(old))
    return dirty


@dataclass
class IncrementalState:
    """Per-rank incremental-checkpointing bookkeeping (lives on the agent)."""

    full_every: int = 4  #: every k-th checkpoint is a full one
    page_size: int = PAGE_SIZE
    _last_hashes: Optional[Tuple[bytes, ...]] = None
    _since_full: int = 0

    def plan(self, blob: bytes) -> Tuple[bool, int, Tuple[bytes, ...]]:
        """Decide full-vs-incremental for a new snapshot *blob*.

        Returns ``(is_full, write_bytes, hashes)`` — callers commit the
        decision with :meth:`advance`.
        """
        hashes = page_hashes(blob, self.page_size)
        if self._last_hashes is None or self._since_full + 1 >= self.full_every:
            return True, len(blob), hashes
        dirty = dirty_pages(self._last_hashes, hashes)
        return False, dirty * self.page_size, hashes

    def advance(self, is_full: bool, hashes: Tuple[bytes, ...]) -> None:
        """Commit the planned checkpoint into the tracking state."""
        self._last_hashes = hashes
        self._since_full = 0 if is_full else self._since_full + 1

    def reset(self) -> None:
        """Forget history (after a rollback the next checkpoint is full)."""
        self._last_hashes = None
        self._since_full = 0
