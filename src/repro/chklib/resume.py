"""Durable recovery lines: a halted run serialised to disk.

A :class:`DurableLine` is the on-disk image of a run halted at a point in
simulated time: the committed checkpoint store, the scheme's persistent
protocol state, every RNG stream position, the trace so far and the run's
accounting counters. :meth:`CheckpointRuntime.restart_from
<repro.chklib.runtime.CheckpointRuntime.restart_from>` rebuilds a fresh
simulation from it and continues **bit-for-bit identically** to a run that
crashed at the same instant and recovered in-process — restarting *is* a
recovery, just one that crossed a process boundary.

File format (version 1)::

    b"RPRL" | version:u32be | crc32:u32be | pickled payload

The whole frame is written atomically (temp file + ``os.replace``), and
:meth:`load` validates magic, version and CRC before unpickling — a torn
or corrupted line raises :class:`~repro.core.errors.ResumeError` instead
of resurrecting garbage.
"""

from __future__ import annotations

import os
import pickle
import struct
import tempfile
import zlib
from typing import Any, Dict, Tuple, Type

from ..core.errors import ResumeError

__all__ = [
    "DurableLine",
    "LINE_MAGIC",
    "LINE_VERSION",
    "resume_fields",
    "volatile_fields",
    "resume_components",
]

LINE_MAGIC = b"RPRL"
LINE_VERSION = 1
_HEADER = struct.Struct(">II")  # version, crc32


def _manifest_union(cls: Type, attr: str) -> Tuple[str, ...]:
    """Union of a tuple-valued class attribute over *cls*'s MRO, in
    base-to-leaf declaration order, deduplicated."""
    seen: Dict[str, None] = {}
    for klass in reversed(cls.__mro__):
        for name in vars(klass).get(attr, ()):
            seen.setdefault(name, None)
    return tuple(seen)


def resume_fields(cls: Type) -> Tuple[str, ...]:
    """All ``RESUME_FIELDS`` declared along *cls*'s MRO — the attributes
    captured verbatim into a durable line and restored on resume."""
    return _manifest_union(cls, "RESUME_FIELDS")


def volatile_fields(cls: Type) -> Tuple[str, ...]:
    """All ``VOLATILE_FIELDS`` declared along *cls*'s MRO — attributes
    deliberately rebuilt on restart (engine handles, caches, bound
    references) and excluded from capture/pickling."""
    return _manifest_union(cls, "VOLATILE_FIELDS")


def resume_components(cls: Type) -> Tuple[str, ...]:
    """All ``RESUME_COMPONENTS`` declared along *cls*'s MRO — sub-objects
    captured through their own ``export_state()``/manifest rather than as
    plain values."""
    return _manifest_union(cls, "RESUME_COMPONENTS")


class DurableLine:
    """One serialised recovery line (see module docstring for the format)."""

    def __init__(self, meta: Dict[str, Any], blob: bytes) -> None:
        #: the payload's ``meta`` dict, kept unpickled for cheap inspection
        #: (scheme/app names, seed, rank count, halt time).
        self.meta = meta
        self._blob = blob

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "DurableLine":
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        return cls(meta=dict(payload["meta"]), blob=blob)

    def payload(self) -> Dict[str, Any]:
        """The full captured runtime state (unpickled fresh per call, so
        two restarts from one line never share mutable objects)."""
        return pickle.loads(self._blob)

    @property
    def nbytes(self) -> int:
        return len(self._blob)

    # -- disk round trip -----------------------------------------------------

    def save(self, path: str) -> str:
        """Atomically write the framed line to *path* (temp + replace: a
        crash mid-write leaves either the old file or nothing, never a
        torn frame)."""
        path = os.fspath(path)
        frame = (
            LINE_MAGIC
            + _HEADER.pack(LINE_VERSION, zlib.crc32(self._blob) & 0xFFFFFFFF)
            + self._blob
        )
        directory = os.path.dirname(path) or "."
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(frame)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    @classmethod
    def load(cls, path: str) -> "DurableLine":
        """Read and validate a framed line; raises :class:`ResumeError` on
        any damage (missing, short, bad magic/version, CRC mismatch,
        unpicklable payload)."""
        path = os.fspath(path)
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
        except OSError as exc:
            raise ResumeError(f"cannot read recovery line {path!r}: {exc}") from exc
        header_len = len(LINE_MAGIC) + _HEADER.size
        if len(raw) < header_len:
            raise ResumeError(
                f"recovery line {path!r} is truncated "
                f"({len(raw)}B < {header_len}B header)"
            )
        if raw[: len(LINE_MAGIC)] != LINE_MAGIC:
            raise ResumeError(f"{path!r} is not a recovery line (bad magic)")
        version, crc = _HEADER.unpack(
            raw[len(LINE_MAGIC) : header_len]
        )
        if version != LINE_VERSION:
            raise ResumeError(
                f"recovery line {path!r} has version {version}, "
                f"expected {LINE_VERSION}"
            )
        blob = raw[header_len:]
        if (zlib.crc32(blob) & 0xFFFFFFFF) != crc:
            raise ResumeError(
                f"recovery line {path!r} failed its CRC check "
                f"(torn or corrupted write)"
            )
        try:
            payload = pickle.loads(blob)
            meta = dict(payload["meta"])
        except Exception as exc:
            raise ResumeError(
                f"recovery line {path!r} payload does not deserialise: {exc}"
            ) from exc
        line = cls(meta=meta, blob=blob)
        return line

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<DurableLine scheme={self.meta.get('scheme')!r} "
            f"t={self.meta.get('halted_at')} {self.nbytes}B>"
        )
