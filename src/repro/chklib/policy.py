"""Composable checkpoint-scheduling policies.

The paper's schemes take checkpoints on a fixed interval — one knob. Real
checkpointing runtimes (and the replication/adaptive FT literature) choose
*when* to checkpoint from observed conditions: failure rate, storage
pressure, application phase. A :class:`CheckpointPolicy` factors that
decision out of the schemes: both scheme families ask their policy for the
next checkpoint time (or, for point-driven policies, whether the current
checkpoint point should trigger a cut), and the policy emits structured
``policy.*`` trace events so the verify invariants can audit every
decision.

Policies are deliberately *picklable* and engine-free: the runtime is
passed into every decision call and never stored, so a policy travels
inside a durable recovery line (:mod:`repro.chklib.resume`). Decisions are
memoised per (rank, shot): a resumed run replays the pre-halt shots
through :meth:`CheckpointPolicy.next_time` and gets the recorded answers
back without re-running the decision logic — no duplicate ``policy.*``
events, no double-advanced adaptive state.

Event vocabulary (checked by
:class:`repro.verify.invariants.PolicyAdaptation`):

* ``policy.decide`` — one scheduling decision: ``policy`` (kind), ``rank``,
  ``shot`` (0-based decision ordinal), ``at`` (the chosen time); interval
  policies add ``interval``/``lo``/``hi``.
* ``policy.adapt`` — an adaptive policy changed its interval: ``policy``,
  ``rank``, ``direction`` (``narrow``/``widen``), ``interval`` (the new
  value), ``lo``/``hi`` (the clamp), ``cause`` (``fault``/``quiet``/
  ``pressure``) and ``observed`` (what triggered it).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

from ..core.errors import SimulationError

__all__ = [
    "CheckpointPolicy",
    "FixedTimes",
    "Periodic",
    "PhaseTriggered",
    "FailureRateAdaptive",
    "StoragePressure",
    "POLICY_KINDS",
    "policy_spec",
    "build_policy",
]


class CheckpointPolicy:
    """Decides when each rank takes its next checkpoint.

    Time-driven policies answer :meth:`next_time`; point-driven policies
    (``point_driven = True``) answer :meth:`on_point` instead and the
    schemes skip their timer/initiator daemons entirely.
    """

    kind = "abstract"
    #: True: cuts are triggered from application checkpoint points, not
    #: from a timer (``next_time`` is never consulted).
    point_driven = False
    #: interval clamp advertised in ``policy.decide`` events (None for
    #: policies without a notion of interval, e.g. an explicit schedule).
    lo: Optional[float] = None
    hi: Optional[float] = None

    #: Capture manifest (see :mod:`repro.chklib.resume`): a policy rides
    #: in the pickled scheme, and the decision memo is what makes resumed
    #: runs replay pre-halt decisions with no side effects.
    RESUME_FIELDS = ("_memo",)

    def __init__(self) -> None:
        #: per-rank memo of every decision: ``{rank: {shot: time|None}}``.
        #: Replayed verbatim on resume so decisions happen exactly once.
        self._memo: Dict[int, Dict[int, Optional[float]]] = {}

    # -- the decision surface ------------------------------------------------

    def next_time(self, runtime: Any, rank: int, shot: int) -> Optional[float]:
        """The simulated time of *rank*'s checkpoint number *shot* (0-based),
        or None when the schedule is exhausted. Idempotent per (rank, shot):
        repeated calls (resume replay) return the memoised decision with no
        side effects."""
        memo = self._memo.setdefault(rank, {})
        if shot in memo:
            return memo[shot]
        t = self._decide(runtime, rank, shot)
        memo[shot] = t
        if t is not None:
            fields = self._decide_fields()
            runtime.tracer.event(
                "policy.decide",
                policy=self.kind,
                rank=rank,
                shot=shot,
                at=t,
                **fields,
            )
            runtime.tracer.add("policy.decisions")
            if "interval" in fields:
                runtime.tracer.add("policy.interval_sum", fields["interval"])
        return t

    def on_point(self, runtime: Any, rank: int) -> bool:
        """Point-driven hook: should the checkpoint point *rank* just
        reached trigger a cut? (Only consulted when ``point_driven``.)"""
        return False

    # -- subclass surface ----------------------------------------------------

    def _decide(self, runtime: Any, rank: int, shot: int) -> Optional[float]:
        raise NotImplementedError

    def _decide_fields(self) -> Dict[str, Any]:
        """Extra ``policy.decide`` payload (interval policies report the
        chosen spacing and its clamp)."""
        return {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__}>"


class FixedTimes(CheckpointPolicy):
    """The legacy behaviour: an explicit, pre-computed schedule.

    Wrapping a scheme's ``times`` list in this policy reproduces the old
    fixed-interval runs exactly (same checkpoint times, same RNG draws).
    """

    kind = "fixed"
    RESUME_FIELDS = ("times",)

    def __init__(self, times: Sequence[float]) -> None:
        super().__init__()
        self.times = tuple(sorted(float(t) for t in times))

    def _decide(self, runtime: Any, rank: int, shot: int) -> Optional[float]:
        if shot >= len(self.times):
            return None
        return self.times[shot]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<FixedTimes n={len(self.times)}>"


class Periodic(CheckpointPolicy):
    """A fixed interval, open-ended (or bounded by *stop*)."""

    kind = "periodic"
    RESUME_FIELDS = ("interval", "start", "stop", "lo", "hi", "_prev")

    def __init__(
        self,
        interval: float,
        start: Optional[float] = None,
        stop: Optional[float] = None,
    ) -> None:
        super().__init__()
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval!r}")
        self.interval = float(interval)
        self.start = float(start) if start is not None else self.interval
        self.stop = float(stop) if stop is not None else None
        self.lo = self.hi = self.interval
        self._prev: Dict[int, float] = {}

    def _decide(self, runtime: Any, rank: int, shot: int) -> Optional[float]:
        prev = self._prev.get(rank)
        t = self.start if prev is None else prev + self.interval
        if self.stop is not None and t > self.stop:
            return None
        self._prev[rank] = t
        return t

    def _decide_fields(self) -> Dict[str, Any]:
        return {"interval": self.interval, "lo": self.lo, "hi": self.hi}


class PhaseTriggered(CheckpointPolicy):
    """Cut at application phase boundaries: every *every*-th checkpoint
    point a rank reaches triggers a cut there (no timers at all)."""

    kind = "phase"
    point_driven = True
    RESUME_FIELDS = ("every", "_points", "_shots")

    def __init__(self, every: int = 1) -> None:
        super().__init__()
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every!r}")
        self.every = int(every)
        self._points: Dict[int, int] = {}
        self._shots: Dict[int, int] = {}

    def _decide(self, runtime: Any, rank: int, shot: int) -> Optional[float]:
        return None  # never time-driven

    def on_point(self, runtime: Any, rank: int) -> bool:
        count = self._points.get(rank, 0) + 1
        self._points[rank] = count
        if count % self.every != 0:
            return False
        shot = self._shots.get(rank, 0)
        self._shots[rank] = shot + 1
        runtime.tracer.event(
            "policy.decide",
            policy=self.kind,
            rank=rank,
            shot=shot,
            at=runtime.engine.now,
        )
        runtime.tracer.add("policy.decisions")
        return True


class _AdaptiveInterval(CheckpointPolicy):
    """Shared machinery: an interval clamped to [lo, hi], adapted per
    decision, with the next shot scheduled one interval ahead."""

    RESUME_FIELDS = ("base_interval", "lo", "hi", "stop", "_interval", "_prev")

    def __init__(
        self, base_interval: float, lo: float, hi: float, stop: Optional[float]
    ) -> None:
        super().__init__()
        if base_interval <= 0:
            raise ValueError(
                f"base_interval must be positive, got {base_interval!r}"
            )
        if not (0 < lo <= base_interval <= hi):
            raise ValueError(
                f"need 0 < lo <= base <= hi, got lo={lo!r} "
                f"base={base_interval!r} hi={hi!r}"
            )
        self.base_interval = float(base_interval)
        self.lo = float(lo)
        self.hi = float(hi)
        self.stop = float(stop) if stop is not None else None
        self._interval = self.base_interval
        self._prev: Dict[int, float] = {}

    def _adapt(
        self, runtime: Any, rank: int, new: float, cause: str, observed: Any
    ) -> None:
        new = min(self.hi, max(self.lo, new))
        if new == self._interval:
            return
        direction = "narrow" if new < self._interval else "widen"
        self._interval = new
        runtime.tracer.event(
            "policy.adapt",
            policy=self.kind,
            rank=rank,
            direction=direction,
            interval=new,
            lo=self.lo,
            hi=self.hi,
            cause=cause,
            observed=observed,
        )
        runtime.tracer.add(f"policy.{direction}ings")

    def _decide(self, runtime: Any, rank: int, shot: int) -> Optional[float]:
        self._observe(runtime, rank)
        t = max(self._prev.get(rank, 0.0), runtime.engine.now) + self._interval
        if self.stop is not None and t > self.stop:
            return None
        self._prev[rank] = t
        return t

    def _decide_fields(self) -> Dict[str, Any]:
        return {"interval": self._interval, "lo": self.lo, "hi": self.hi}

    def _observe(self, runtime: Any, rank: int) -> None:
        raise NotImplementedError


class FailureRateAdaptive(_AdaptiveInterval):
    """Checkpoint more often while failures are being observed.

    Each decision diffs the runtime's recovery count and injected storage
    faults against what it last saw: new activity multiplies the interval
    by *narrow* (clamped to *lo*); *quiet_shots* consecutive quiet
    decisions multiply it by *widen* (clamped to *hi*). The classic
    failure-rate feedback loop, applied to the paper's schemes.
    """

    kind = "failure_adaptive"
    RESUME_FIELDS = (
        "narrow",
        "widen",
        "quiet_shots",
        "_seen_recoveries",
        "_seen_faults",
        "_quiet",
    )

    def __init__(
        self,
        base_interval: float,
        min_interval: Optional[float] = None,
        max_interval: Optional[float] = None,
        narrow: float = 0.5,
        widen: float = 1.5,
        quiet_shots: int = 2,
        stop: Optional[float] = None,
    ) -> None:
        lo = float(min_interval) if min_interval is not None else base_interval / 4.0
        hi = float(max_interval) if max_interval is not None else base_interval * 4.0
        super().__init__(base_interval, lo, hi, stop)
        if not (0.0 < narrow < 1.0):
            raise ValueError(f"narrow must be in (0, 1), got {narrow!r}")
        if widen <= 1.0:
            raise ValueError(f"widen must be > 1, got {widen!r}")
        if quiet_shots < 1:
            raise ValueError(f"quiet_shots must be >= 1, got {quiet_shots!r}")
        self.narrow = float(narrow)
        self.widen = float(widen)
        self.quiet_shots = int(quiet_shots)
        self._seen_recoveries = 0
        self._seen_faults = 0
        self._quiet = 0

    def _observe(self, runtime: Any, rank: int) -> None:
        recoveries = len(runtime.recoveries)
        faults = runtime.storage.write_faults + runtime.storage.read_faults
        observed = (recoveries - self._seen_recoveries) + (
            faults - self._seen_faults
        )
        self._seen_recoveries = recoveries
        self._seen_faults = faults
        if observed > 0:
            self._quiet = 0
            self._adapt(
                runtime, rank, self._interval * self.narrow, "fault", observed
            )
        else:
            self._quiet += 1
            if self._quiet >= self.quiet_shots and self._interval < self.hi:
                self._quiet = 0
                self._adapt(
                    runtime, rank, self._interval * self.widen, "quiet", 0
                )


class StoragePressure(_AdaptiveInterval):
    """Checkpoint less often as stable storage fills toward a budget.

    The interval scales with occupancy: at or below *budget_bytes* the base
    interval holds; past it the interval stretches proportionally (clamped
    to *hi*) — trading recovery distance for storage headroom, the pressure
    valve independent checkpointing needs when GC lags.
    """

    kind = "storage_pressure"
    RESUME_FIELDS = ("budget_bytes",)

    def __init__(
        self,
        base_interval: float,
        budget_bytes: float,
        max_interval: Optional[float] = None,
        stop: Optional[float] = None,
    ) -> None:
        hi = float(max_interval) if max_interval is not None else base_interval * 8.0
        super().__init__(base_interval, base_interval, hi, stop)
        if budget_bytes <= 0:
            raise ValueError(f"budget_bytes must be positive, got {budget_bytes!r}")
        self.budget_bytes = float(budget_bytes)

    def _observe(self, runtime: Any, rank: int) -> None:
        pressure = runtime.store.total_bytes() / self.budget_bytes
        target = self.base_interval * max(1.0, pressure)
        self._adapt(runtime, rank, target, "pressure", round(pressure, 6))


# -- declarative construction (the experiment grid's policy config) -----------

POLICY_KINDS = {
    "fixed": FixedTimes,
    "periodic": Periodic,
    "phase": PhaseTriggered,
    "failure_adaptive": FailureRateAdaptive,
    "storage_pressure": StoragePressure,
}


def policy_spec(kind: str, **options: Any) -> Tuple[str, Tuple[Tuple[str, Any], ...]]:
    """The canonical (hashable, cache-key-stable) form of a policy config:
    ``(kind, ((option, value), ...))`` with options sorted and sequence
    values normalised to tuples."""
    if kind not in POLICY_KINDS:
        raise SimulationError(
            f"unknown policy kind {kind!r} (have: {sorted(POLICY_KINDS)})"
        )
    normalised = tuple(
        (k, tuple(v) if isinstance(v, (list, tuple)) else v)
        for k, v in sorted(options.items())
    )
    return (kind, normalised)


def build_policy(spec: Tuple[str, Tuple[Tuple[str, Any], ...]]) -> CheckpointPolicy:
    """Instantiate a policy from its :func:`policy_spec` form."""
    kind, options = spec
    if kind not in POLICY_KINDS:
        raise SimulationError(
            f"unknown policy kind {kind!r} (have: {sorted(POLICY_KINDS)})"
        )
    return POLICY_KINDS[kind](**dict(options))
