"""Checkpoint space reclamation.

For independent checkpointing the store accumulates a chain per process; a
checkpoint can be discarded once it can no longer appear on any future
recovery line. Because channel counters only grow, the maximal consistent
line computed *now* only ever moves forward — so everything strictly older
than the current line is garbage (the classic result behind Wang et al.'s
space reclamation; our rule is the count-based equivalent).

Coordinated checkpointing needs none of this: commit of global checkpoint
*n* discards *n-1* outright (done inline by the scheme); the store never
holds more than two checkpoints per process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .recovery import build_cuts, consistent_line
from .storage_mgr import CheckpointStore

__all__ = ["GcStats", "collect_garbage"]


@dataclass
class GcStats:
    """Outcome of one garbage-collection pass."""

    line_indices: Dict[int, int]
    freed_bytes: int
    freed_checkpoints: int
    remaining_checkpoints: int
    remaining_bytes: int


def collect_garbage(
    store: CheckpointStore,
    transitless: bool = False,
    logging_recovery: bool = False,
    tracer=None,
) -> GcStats:
    """Discard every checkpoint that can no longer be needed by recovery.

    * ``logging_recovery=False`` — recovery restores the maximal consistent
      line (transitless without logs, mirrored by ``transitless``);
      everything strictly older is garbage.
    * ``logging_recovery=True`` — orphan-tolerant recovery always restores
      each rank's *latest* checkpoint, so an older checkpoint is garbage as
      soon as none of its logged messages can still be in transit across
      the latest line (i.e. every annex message has been consumed by its
      destination's newest cut).

    With a *tracer*, each pass emits a ``gc.run`` event carrying the
    per-rank protected indices (the line members and their incremental
    chains) and a ``gc.discard`` event per removed checkpoint, so the
    trace invariant engine can audit that GC never eats a line member.
    """
    cuts = build_cuts(store, written_only=True)
    before_count = store.count()
    freed = 0
    protected: Dict[int, tuple] = {}
    discards = []  # (rank, index) chosen by the policy below
    if logging_recovery:
        latest = {r: cuts[r][-1] for r in cuts}
        line_indices = {r: c.index for r, c in latest.items()}
        for rank in cuts:
            if latest[rank].index == 0:
                protected[rank] = ()
                continue
            # an incremental latest checkpoint needs its chain of bases
            chain_keep = set()
            idx = latest[rank].index
            while True:
                chain_keep.add(idx)
                rec = store.get(rank, idx)
                if rec.base_index is None:
                    break
                idx = rec.base_index
            protected[rank] = tuple(sorted(chain_keep))
            for rec in list(store.chain(rank)):
                if rec.index in chain_keep:
                    continue
                still_needed = any(
                    m.seq > latest[m.dst].consumed_from(rank)
                    for m in rec.log_annex
                )
                if not still_needed:
                    discards.append((rank, rec.index))
    else:
        line = consistent_line(cuts, transitless=transitless)
        line_indices = {r: c.index for r, c in line.items()}
        for rank, cut in line.items():
            keep_from = (
                store.chain_base(rank, cut.index) if cut.index > 0 else 0
            )
            protected[rank] = tuple(
                rec.index
                for rec in store.chain(rank)
                if keep_from <= rec.index <= cut.index
            )
            discards.extend(
                (rank, rec.index)
                for rec in store.chain(rank)
                if rec.index < keep_from
            )
    if tracer is not None:
        tracer.event(
            "gc.run",
            line=tuple(sorted(line_indices.items())),
            protected=tuple(sorted(protected.items())),
        )
    for rank, index in discards:
        if tracer is not None:
            tracer.event("gc.discard", rank=rank, index=index)
        freed += store.discard(rank, index)
    return GcStats(
        line_indices=line_indices,
        freed_bytes=freed,
        freed_checkpoints=before_count - store.count(),
        remaining_checkpoints=store.count(),
        remaining_bytes=store.total_bytes(),
    )
