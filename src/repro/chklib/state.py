"""Process-state snapshots.

A checkpoint's payload is a pickled deep copy of the application's state
dictionary (NumPy arrays, counters, RNG state). Pickling both isolates the
snapshot from later in-place mutation and yields a realistic byte size —
the single number that drives all of the paper's overhead results.

The applications' contract (see :mod:`repro.apps.base`):

* all replay-relevant state lives in one dict, mutated in place;
* the dict is snapshot-safe at every ``checkpoint_point()`` yield;
* re-running ``app.run(ctx, restored_state)`` reproduces the execution
  exactly (piecewise determinism — the RNG generator lives in the dict).
"""

from __future__ import annotations

import pickle
from typing import Any, Dict

__all__ = ["Snapshot", "state_nbytes"]


def state_nbytes(state: Dict[str, Any]) -> int:
    """Serialized size of a state dict without keeping the bytes around."""
    return len(pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL))


class Snapshot:
    """An immutable, restorable copy of a process state."""

    __slots__ = ("_blob", "nbytes")

    def __init__(self, blob: bytes) -> None:
        self._blob = blob
        self.nbytes = len(blob)

    @classmethod
    def capture(cls, state: Dict[str, Any]) -> "Snapshot":
        """Deep-copy *state* via pickling."""
        if not isinstance(state, dict):
            raise TypeError(f"process state must be a dict, got {type(state)!r}")
        return cls(pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL))

    @property
    def blob(self) -> bytes:
        """The serialized state (page-level dirty tracking reads this)."""
        return self._blob

    def restore(self) -> Dict[str, Any]:
        """A fresh, independent copy of the captured state."""
        return pickle.loads(self._blob)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Snapshot {self.nbytes}B>"
