"""Checkpoint records and their lifecycle in stable storage.

The :class:`CheckpointStore` is the *content* of stable storage: per-process
chains of checkpoints (tentative → committed), recorded channel state, and
flushed message logs. The *timing* of getting bytes there is modelled by
:class:`repro.machine.storage.StableStorage`; this module only accounts for
what is stored, which gives the paper's storage-overhead comparison
(coordinated keeps at most two checkpoints per process; independent
accumulates a chain until garbage collection).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..net.message import Message
from .state import Snapshot

__all__ = ["CheckpointRecord", "CheckpointStore"]


@dataclass
class CheckpointRecord:
    """One local checkpoint of one process."""

    rank: int
    index: int  #: checkpoint number for this process (1-based; 0 = initial)
    snapshot: Snapshot
    comm_meta: dict  #: sent/consumed counts + collective counter at the cut
    taken_at: float  #: simulated time of the cut
    #: in-transit messages recorded into this checkpoint (coordinated
    #: protocols record them between the cut and the markers).
    channel_msgs: List[Message] = field(default_factory=list)
    #: sender-log messages flushed together with this checkpoint
    #: (independent checkpointing with message logging).
    log_annex: List[Message] = field(default_factory=list)
    committed: bool = False
    written_at: Optional[float] = None  #: when the write to storage finished
    #: two-level storage: when the background copy to the *global* server
    #: finished (equals ``written_at`` in single-level operation).
    global_written_at: Optional[float] = None
    #: fixed process-image overhead (code, stack, heap) saved on top of the
    #: application data — CHK-LIB was a system-level checkpointer.
    pad_bytes: int = 0
    #: incremental checkpointing: actual bytes shipped to storage for the
    #: state (dirty pages only); ``None`` means a full write.
    stored_state_bytes: Optional[int] = None
    #: index of the checkpoint this increment builds on (``None`` = full).
    base_index: Optional[int] = None
    #: CRC of the state image *as stored* — set at capture; silent media
    #: corruption perturbs it so recovery-time validation can detect it.
    #: (Log annexes carry per-message framing checksums and are salvaged
    #: even from a corrupt record; only the state image is suspect.)
    stored_checksum: Optional[int] = None
    #: quarantined by recovery: failed integrity validation or exhausted
    #: its restore-read retries; never eligible for recovery again.
    quarantined: bool = False

    def __post_init__(self) -> None:
        if self.stored_checksum is None:
            self.stored_checksum = self.content_checksum()

    # -- integrity -----------------------------------------------------------

    def content_checksum(self) -> int:
        """CRC over the state image this record restores."""
        return zlib.crc32(self.snapshot.blob)

    def verify_integrity(self) -> bool:
        """Does the stored image still match its capture-time checksum?"""
        return self.stored_checksum == self.content_checksum()

    def mark_corrupted(self) -> None:
        """Silently rot the stored image (fault injection / tests)."""
        self.stored_checksum = (self.content_checksum() ^ 0xDEADBEEF) & 0xFFFFFFFF

    @property
    def state_bytes(self) -> int:
        """Logical (full) state size — what a restore materialises."""
        return self.snapshot.nbytes + self.pad_bytes

    @property
    def write_bytes(self) -> int:
        """Bytes actually written to stable storage for the state part."""
        if self.stored_state_bytes is not None:
            return self.stored_state_bytes
        return self.state_bytes

    @property
    def incremental(self) -> bool:
        return self.base_index is not None

    @property
    def channel_bytes(self) -> int:
        return sum(m.size for m in self.channel_msgs)

    @property
    def log_bytes(self) -> int:
        return sum(m.size for m in self.log_annex)

    @property
    def total_bytes(self) -> int:
        """Stable-storage occupancy of this record."""
        return self.write_bytes + self.channel_bytes + self.log_bytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flag = "committed" if self.committed else "tentative"
        if self.quarantined:
            flag += " QUARANTINED"
        return f"<Ckpt r{self.rank}#{self.index} {flag} {self.total_bytes}B>"


class CheckpointStore:
    """All checkpoints currently held in stable storage."""

    def __init__(self, n_ranks: int) -> None:
        self.n_ranks = n_ranks
        self._chains: Dict[int, Dict[int, CheckpointRecord]] = {
            r: {} for r in range(n_ranks)
        }
        # metrics
        self.peak_bytes = 0
        self.peak_checkpoints = 0
        self.discarded_bytes = 0.0
        self.discarded_count = 0
        self.quarantined_count = 0

    # -- additions -----------------------------------------------------------

    def add(self, record: CheckpointRecord) -> None:
        chain = self._chains[record.rank]
        if record.index in chain:
            raise ValueError(
                f"duplicate checkpoint index {record.index} for rank {record.rank}"
            )
        if record.index < 1:
            raise ValueError(f"checkpoint indices are 1-based, got {record.index}")
        chain[record.index] = record
        self._update_peaks()

    def commit(self, rank: int, index: int) -> None:
        """Mark a checkpoint stable (keeps it eligible for recovery)."""
        self._chains[rank][index].committed = True

    def quarantine(self, rank: int, index: int) -> None:
        """Mark a checkpoint unusable (corrupt or unreadable). The record
        stays in storage (it still occupies bytes) but is permanently
        excluded from recovery-line construction."""
        rec = self._chains[rank][index]
        if not rec.quarantined:
            rec.quarantined = True
            self.quarantined_count += 1

    def corrupt(self, rank: int, index: int) -> None:
        """Silently corrupt a stored checkpoint image (fault injection)."""
        self._chains[rank][index].mark_corrupted()

    # -- queries -----------------------------------------------------------------

    def get(self, rank: int, index: int) -> CheckpointRecord:
        return self._chains[rank][index]

    def chain(self, rank: int) -> List[CheckpointRecord]:
        """A rank's checkpoints, oldest first."""
        return [self._chains[rank][i] for i in sorted(self._chains[rank])]

    def latest_index(self, rank: int) -> int:
        """Most recent checkpoint index for *rank* (0 if none)."""
        chain = self._chains[rank]
        return max(chain) if chain else 0

    def latest_committed_global(
        self, eligible: Optional[Callable[[CheckpointRecord], bool]] = None
    ) -> int:
        """Largest index committed by *every* rank (0 if none).

        Quarantined records never qualify; *eligible* narrows further
        (e.g. "must have reached the global server").
        """
        best = 0
        candidates = None
        for rank in range(self.n_ranks):
            committed = {
                i
                for i, rec in self._chains[rank].items()
                if rec.committed
                and not rec.quarantined
                and (eligible is None or eligible(rec))
            }
            candidates = committed if candidates is None else candidates & committed
        if candidates:
            best = max(candidates)
        return best

    def count(self, rank: Optional[int] = None, committed_only: bool = False) -> int:
        chains = (
            (self._chains[rank],) if rank is not None else self._chains.values()
        )
        if not committed_only:
            return sum(len(chain) for chain in chains)
        total = 0
        for chain in chains:
            for rec in chain.values():
                if rec.committed:
                    total += 1
        return total

    def total_bytes(self) -> int:
        # Hot: sampled after every add() for the peak metric. Open-coded
        # sum of CheckpointRecord.total_bytes without the property calls.
        total = 0
        for chain in self._chains.values():
            for rec in chain.values():
                state = rec.stored_state_bytes
                if state is None:
                    state = rec.snapshot.nbytes + rec.pad_bytes
                total += state
                for m in rec.channel_msgs:
                    total += m.size
                for m in rec.log_annex:
                    total += m.size
        return total

    # -- deletion ------------------------------------------------------------------

    def discard(self, rank: int, index: int) -> int:
        """Remove one checkpoint; returns the bytes freed."""
        rec = self._chains[rank].pop(index)
        self.discarded_bytes += rec.total_bytes
        self.discarded_count += 1
        return rec.total_bytes

    def discard_older_than(self, rank: int, index: int) -> int:
        """Remove all of *rank*'s checkpoints strictly older than *index*."""
        freed = 0
        for i in [i for i in self._chains[rank] if i < index]:
            freed += self.discard(rank, i)
        return freed

    # -- incremental-chain support ----------------------------------------------

    def chain_intact(self, rank: int, index: int) -> bool:
        """Is checkpoint *index* restorable — present, unquarantined, and
        with its whole incremental chain present and unquarantined?"""
        idx = index
        while True:
            rec = self._chains[rank].get(idx)
            if rec is None or rec.quarantined:
                return False
            if rec.base_index is None:
                return True
            idx = rec.base_index

    def chain_base(self, rank: int, index: int) -> int:
        """First (full) checkpoint of the incremental chain ending at
        *index* — the oldest record recovery of *index* must read."""
        idx = index
        while True:
            rec = self._chains[rank].get(idx)
            if rec is None:
                raise KeyError(f"rank {rank}: broken incremental chain at {idx}")
            if rec.base_index is None:
                return idx
            idx = rec.base_index

    def restore_read_bytes(self, rank: int, index: int) -> int:
        """Bytes recovery must read from stable storage to materialise
        checkpoint *index*: its whole incremental chain."""
        total = 0
        idx = index
        while True:
            rec = self._chains[rank][idx]
            total += rec.write_bytes
            if rec.base_index is None:
                return total
            idx = rec.base_index

    # -- message-log replay support ------------------------------------------------

    def find_logged(self, src: int, dst: int, seq: int) -> Optional[Message]:
        """Locate a sender-logged message by channel and sequence number."""
        for rec in self.chain(src):
            for msg in rec.log_annex:
                if msg.dst == dst and msg.seq == seq:
                    return msg
        return None

    # -- internals ---------------------------------------------------------------

    def _update_peaks(self) -> None:
        self.peak_bytes = max(self.peak_bytes, self.total_bytes())
        self.peak_checkpoints = max(self.peak_checkpoints, self.count())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<CheckpointStore ranks={self.n_ranks} count={self.count()} "
            f"bytes={self.total_bytes()}>"
        )
