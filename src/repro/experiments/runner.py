"""Command-line entry point: regenerate any table or supporting experiment.

Usage::

    python -m repro.experiments.runner table1 [--quick] [--seed N]
    python -m repro.experiments.runner table2
    python -m repro.experiments.runner table3
    python -m repro.experiments.runner ablation-staggering
    python -m repro.experiments.runner ablation-sync
    python -m repro.experiments.runner sweep-writers
    python -m repro.experiments.runner sweep-storage
    python -m repro.experiments.runner domino
    python -m repro.experiments.runner storage-overhead
    python -m repro.experiments.runner resilience
    python -m repro.experiments.runner smoke
    python -m repro.experiments.runner all

Any invocation accepts ``--verify``: every simulation run is then audited
post-hoc by the trace invariant engine (:mod:`repro.verify`), and the
first violated invariant aborts the experiment with a VerificationError.
``smoke`` is the verification smoke battery itself — a small traced run of
every scheme (plus a crash) with the audit always on.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .ablations import run_staggering_ablation, run_sync_cost
from .capture import run_capture_ablation
from .domino import run_domino, run_storage_overhead
from .faults import run_failure_rates, run_interval_sweep
from .resilience import run_resilience
from .sweeps import run_bandwidth_sweep, run_writer_sweep
from .table1 import run_table1
from .table23 import run_table23
from .twolevel import run_two_level
from .workloads import table1_workloads, table23_workloads

__all__ = ["main"]


def _emit(title: str, body: str, summary: str = "") -> None:
    print()
    print(body)
    if summary:
        print()
        print(summary)
    print()


def _shape_report(shapes: dict) -> str:
    lines = ["shape checks (paper's qualitative claims):"]
    for key, ok in shapes.items():
        lines.append(f"  [{'ok' if ok else 'MISS'}] {key}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner", description=__doc__
    )
    parser.add_argument(
        "experiment",
        choices=[
            "table1",
            "table2",
            "table3",
            "ablation-staggering",
            "ablation-sync",
            "sweep-writers",
            "sweep-storage",
            "domino",
            "storage-overhead",
            "capture",
            "failure-rates",
            "interval-sweep",
            "two-level",
            "resilience",
            "smoke",
            "all",
        ],
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--verify",
        action="store_true",
        help="audit every run's event trace post-hoc (repro.verify)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink iteration counts ~5x (faster, same checkpoint volumes)",
    )
    parser.add_argument("--verbose", action="store_true")
    parser.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="also write a consolidated markdown report of everything run",
    )
    args = parser.parse_args(argv)

    if args.verify:
        from ..verify import set_runtime_verification

        set_runtime_verification(True)

    scale = 0.2 if args.quick else 1.0
    t0 = time.time()  # verify: allow[wall-clock] — CLI wall-time reporting
    todo = (
        [args.experiment]
        if args.experiment != "all"
        else [
            "table1",
            "table2",
            "table3",
            "ablation-staggering",
            "ablation-sync",
            "sweep-writers",
            "sweep-storage",
            "domino",
            "storage-overhead",
            "capture",
            "failure-rates",
            "interval-sweep",
            "two-level",
            "resilience",
        ]
    )

    table23_result = None
    report_sections = []

    def _record(title, result):
        report_sections.append((title, result))

    for exp in todo:
        if exp == "table1":
            res = run_table1(
                workloads=table1_workloads(scale),
                seed=args.seed,
                verbose=args.verbose,
            )
            _record("Table 1 — overhead per checkpoint", res)
            _emit(
                "table1",
                res.render(),
                res.summary() + "\n" + _shape_report(res.shape_holds()),
            )
        elif exp in ("table2", "table3"):
            if table23_result is None:
                table23_result = run_table23(
                    workloads=table23_workloads(scale),
                    seed=args.seed,
                    verbose=args.verbose,
                )
            if exp == "table2":
                class _T2View:
                    def __init__(self, inner):
                        self._inner = inner
                    def render(self):
                        return self._inner.render_table2()
                _record("Table 2 — execution times", _T2View(table23_result))
                _emit("table2", table23_result.render_table2())
            else:
                class _T3View:
                    def __init__(self, inner):
                        self._inner = inner
                    def render(self):
                        return self._inner.render_table3()
                    def shape_holds(self):
                        return self._inner.shape_holds()
                _record("Table 3 — overhead percentages", _T3View(table23_result))
                _emit(
                    "table3",
                    table23_result.render_table3(),
                    table23_result.summary()
                    + "\n"
                    + _shape_report(table23_result.shape_holds()),
                )
        elif exp == "ablation-staggering":
            res = run_staggering_ablation(
                workloads=table23_workloads(scale)[:4], seed=args.seed
            )
            _record("A1 — staggering ablation", res)
            _emit(exp, res.render(), _shape_report(res.shape_holds()))
        elif exp == "ablation-sync":
            res = run_sync_cost(
                workloads=table23_workloads(scale)[:4], seed=args.seed
            )
            _record("A2 — synchronisation vs saving cost", res)
            _emit(exp, res.render(), _shape_report(res.shape_holds()))
        elif exp == "sweep-writers":
            res = run_writer_sweep(seed=args.seed)
            _record("S1 — writer sweep", res)
            _emit(exp, res.render(), _shape_report(res.shape_holds()))
        elif exp == "sweep-storage":
            res = run_bandwidth_sweep(seed=args.seed)
            _record("S2 — storage-bandwidth sweep", res)
            _emit(exp, res.render(), _shape_report(res.shape_holds()))
        elif exp == "domino":
            res = run_domino(seed=args.seed)
            _record("R1 — rollback behaviour", res)
            _emit(exp, res.render(), _shape_report(res.shape_holds()))
        elif exp == "storage-overhead":
            res = run_storage_overhead(seed=args.seed)
            _record("R2 — stable-storage overhead", res)
            _emit(exp, res.render(), _shape_report(res.shape_holds()))
        elif exp == "capture":
            res = run_capture_ablation(seed=args.seed)
            _record("E1 — capture modes and incremental", res)
            _emit(exp, res.render(), _shape_report(res.shape_holds()))
        elif exp == "failure-rates":
            res = run_failure_rates(seed=args.seed)
            _record("E2/F1 — completion vs failure rate", res)
            _emit(exp, res.render(), _shape_report(res.shape_holds()))
        elif exp == "interval-sweep":
            res = run_interval_sweep(seed=args.seed)
            _record("E2/F2 — interval sweep vs Young", res)
            _emit(exp, res.render(), _shape_report(res.shape_holds()))
        elif exp == "two-level":
            res = run_two_level(seed=args.seed)
            _record("E3 — two-level stable storage", res)
            _emit(exp, res.render(), _shape_report(res.shape_holds()))
        elif exp == "resilience":
            res = run_resilience(seed=args.seed)
            _record("R3 — resilience under faulty stable storage", res)
            _emit(exp, res.render(), _shape_report(res.shape_holds()))
        elif exp == "smoke":
            from ..verify.smoke import run_smoke

            results = run_smoke(seed=args.seed, verbose=args.verbose)
            lines = [
                f"  [{'ok' if rep.ok else 'FAIL'}] {name:<16} {rep.summary()}"
                for name, rep in results
            ]
            _emit("smoke", "verification smoke battery:\n" + "\n".join(lines))
            for _name, rep in results:
                rep.raise_if_violated()

    if args.report and report_sections:
        from ..analysis import build_report

        text = build_report(report_sections, seed=args.seed)
        with open(args.report, "w") as fh:
            fh.write(text)
        print(f"[runner] report written to {args.report}")
    print(f"[runner] done in {time.time() - t0:.1f}s wall")  # verify: allow[wall-clock]
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
