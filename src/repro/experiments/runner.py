"""Command-line entry point: regenerate any table or supporting experiment.

Usage::

    python -m repro.experiments.runner table1 [--quick] [--seed N]
    python -m repro.experiments.runner table2
    python -m repro.experiments.runner table3
    python -m repro.experiments.runner ablation-staggering
    python -m repro.experiments.runner ablation-sync
    python -m repro.experiments.runner sweep-writers
    python -m repro.experiments.runner sweep-storage
    python -m repro.experiments.runner domino
    python -m repro.experiments.runner storage-overhead
    python -m repro.experiments.runner resilience
    python -m repro.experiments.runner policies
    python -m repro.experiments.runner smoke
    python -m repro.experiments.runner all [--jobs N]
    python -m repro.experiments.runner --list-schemes

Every experiment is a declarative :class:`~repro.experiments.grid.ExperimentSpec`;
the runner hands the selected specs to one shared
:class:`~repro.experiments.executor.GridExecutor`, which deduplicates
identical cells across experiments, fans unique cells out over ``--jobs``
worker processes and memoises results in a content-keyed on-disk cache
(``--cache-dir``, ``--no-cache``).  Tables go to stdout; all diagnostics
(executor statistics, wall time, ``--timings`` notices) go to stderr, so
stdout is byte-identical regardless of job count or cache state.

Any invocation accepts ``--verify``: every simulation run is then audited
post-hoc by the trace invariant engine (:mod:`repro.verify`), and the
first violated invariant aborts the experiment with a VerificationError.
``smoke`` is the verification smoke battery itself — a small traced run of
every scheme (plus a crash) with the audit always on.

Robustness: ``--resume PATH`` journals every completed cell to a JSONL
file and replays it on re-run, so a sweep killed mid-flight (even
``kill -9``) resumes where it left off with byte-identical stdout;
``--cell-timeout SECONDS`` bounds each cell's wall clock (a timed-out
cell is retried once, then recorded as failed).  Failed or timed-out
cells no longer abort the whole sweep: the runner renders every table it
can, prints a per-cell failure summary to stderr and exits non-zero.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

from ..machine import MachineParams
from .ablations import staggering_spec, sync_cost_spec
from .capture import capture_spec
from .domino import domino_spec, storage_overhead_spec
from .executor import GridExecutor, RunJournal, default_cache_dir
from .faults import failure_rates_spec, interval_sweep_spec
from .grid import ExperimentSpec
from .policies import policies_spec
from .resilience import resilience_spec
from .scale import scale_machine, scale_spec, scale_workload
from .sweeps import bandwidth_sweep_spec, writer_sweep_spec
from .table1 import table1_spec
from .table23 import table23_spec
from .twolevel import two_level_spec
from .workloads import table1_workloads, table23_workloads

__all__ = ["main"]

#: CLI name -> (spec name, report title, view restriction, print summary?).
#: ``table2`` and ``table3`` are two views of the single shared ``table23``
#: grid result — the executor runs that spec once for both.
_EXPERIMENTS = {
    "table1": ("table1", "Table 1 — overhead per checkpoint", None, True),
    "table2": ("table23", "Table 2 — execution times", "table2", False),
    "table3": ("table23", "Table 3 — overhead percentages", "table3", True),
    "ablation-staggering": (
        "ablation-staggering", "A1 — staggering ablation", None, False,
    ),
    "ablation-sync": (
        "ablation-sync", "A2 — synchronisation vs saving cost", None, False,
    ),
    "sweep-writers": ("sweep-writers", "S1 — writer sweep", None, False),
    "sweep-storage": (
        "sweep-storage", "S2 — storage-bandwidth sweep", None, False,
    ),
    "domino": ("domino", "R1 — rollback behaviour", None, False),
    "storage-overhead": (
        "storage-overhead", "R2 — stable-storage overhead", None, False,
    ),
    "capture": ("capture", "E1 — capture modes and incremental", None, False),
    "failure-rates": (
        "failure-rates", "E2/F1 — completion vs failure rate", None, False,
    ),
    "interval-sweep": (
        "interval-sweep", "E2/F2 — interval sweep vs Young", None, False,
    ),
    "two-level": ("two-level", "E3 — two-level stable storage", None, False),
    "resilience": (
        "resilience", "R3 — resilience under faulty stable storage", None, False,
    ),
    "policies": (
        "policies", "P1 — checkpoint policies (fixed vs fault-adaptive)", None, False,
    ),
    "scale": ("scale", "Scale — overhead vs machine size", None, True),
}

#: ``all`` excludes the scale sweep: its N=1024 cells dwarf every other
#: experiment's wall time (run it explicitly: ``runner scale --quick``).
_ALL_ORDER = [name for name in _EXPERIMENTS if name != "scale"]


def _emit(title: str, body: str, summary: str = "") -> None:
    print()
    print(body)
    if summary:
        print()
        print(summary)
    print()


def _shape_report(shapes: dict) -> str:
    lines = ["shape checks (paper's qualitative claims):"]
    for key, ok in shapes.items():
        lines.append(f"  [{'ok' if ok else 'MISS'}] {key}")
    return "\n".join(lines)


def _build_spec(
    spec_name: str,
    seed: int,
    scale: float,
    ranks: Optional[int] = None,
    topology: Optional[str] = None,
) -> ExperimentSpec:
    """One experiment spec, with ``--quick``'s scale plumbed everywhere.

    ``--ranks``/``--topology`` resize the simulated machine for *any*
    experiment: the machine becomes the named preset (or the scale
    sweep's default shape) at ``ranks`` nodes, and — because the paper's
    fixed-size workload catalogues cannot be partitioned over arbitrarily
    many ranks — the workload becomes the weak-scaled SOR row used by the
    scale sweep. At the default 8 ranks with no topology flag nothing
    changes.
    """
    machine = None
    workload = None
    if ranks is not None or topology is not None:
        n = ranks if ranks is not None else 8
        machine = scale_machine(n, topology)
        if ranks is not None:
            workload = scale_workload(ranks, scale)
    workloads = None if workload is None else [workload]

    if spec_name == "scale":
        return scale_spec(
            ns=(ranks,) if ranks is not None else None,
            seed=seed,
            scale=scale,
            topology=topology,
        )
    if spec_name == "table1":
        return table1_spec(
            workloads=workloads or table1_workloads(scale),
            seed=seed,
            machine=machine,
        )
    if spec_name == "table23":
        return table23_spec(
            workloads=workloads or table23_workloads(scale),
            seed=seed,
            machine=machine,
        )
    if spec_name == "ablation-staggering":
        return staggering_spec(
            workloads=workloads or table23_workloads(scale)[:4],
            seed=seed,
            machine=machine,
        )
    if spec_name == "ablation-sync":
        return sync_cost_spec(
            workloads=workloads or table23_workloads(scale)[:4],
            seed=seed,
            machine=machine,
        )
    if spec_name == "sweep-writers":
        if ranks is not None:
            counts = sorted({max(2, ranks // 4), max(2, ranks // 2), ranks})
            return writer_sweep_spec(
                node_counts=counts,
                seed=seed,
                scale=scale,
                base_grid=max(128, 4 * counts[0] + 2),
                topology=topology,
            )
        return writer_sweep_spec(seed=seed, scale=scale, topology=topology)
    if spec_name == "sweep-storage":
        return bandwidth_sweep_spec(
            seed=seed, scale=scale, workload=workload, machine=machine
        )
    if spec_name == "domino":
        return domino_spec(
            workloads=workloads, seed=seed, scale=scale, machine=machine
        )
    if spec_name == "storage-overhead":
        return storage_overhead_spec(
            workloads=workloads, seed=seed, scale=scale, machine=machine
        )
    if spec_name == "capture":
        return capture_spec(
            workloads=workloads, seed=seed, scale=scale, machine=machine
        )
    if spec_name == "failure-rates":
        return failure_rates_spec(
            workload=workload, seed=seed, scale=scale, machine=machine
        )
    if spec_name == "interval-sweep":
        return interval_sweep_spec(
            workload=workload, seed=seed, scale=scale, machine=machine
        )
    if spec_name == "two-level":
        return two_level_spec(
            workloads=workloads, seed=seed, scale=scale, machine=machine
        )
    if spec_name == "resilience":
        return resilience_spec(
            workload=workload, seed=seed, scale=scale, machine=machine
        )
    if spec_name == "policies":
        return policies_spec(
            workload=workload, seed=seed, scale=scale, machine=machine
        )
    raise ValueError(f"unknown spec {spec_name!r}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner", description=__doc__
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default=None,
        choices=list(_EXPERIMENTS) + ["smoke", "all"],
    )
    parser.add_argument(
        "--list-schemes",
        action="store_true",
        help="print every scheme alias (family + fixed overrides) from "
        "the protocol registry, then exit",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--ranks",
        type=int,
        default=None,
        metavar="N",
        help="simulate N ranks instead of the experiment's default size "
        "(swaps the workload for the weak-scaled SOR row; for the scale "
        "sweep, runs just the N-rank point)",
    )
    parser.add_argument(
        "--topology",
        choices=list(MachineParams.TOPOLOGY_PRESETS),
        default=None,
        help="machine preset to run on (default: each experiment's own "
        "machine; the scale sweep picks flat at 8 ranks, racks beyond)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="audit every run's event trace post-hoc (repro.verify)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink iteration counts ~5x (faster, same checkpoint volumes)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the grid (default: all CPU cores)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help=f"result cache location (default: {default_cache_dir()})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the on-disk result cache",
    )
    parser.add_argument(
        "--resume",
        metavar="PATH",
        default=None,
        help="journal completed cells to PATH (JSONL) and replay any "
        "already journalled there — resume an interrupted sweep",
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="wall-clock budget per cell (0 = unbounded); a timed-out "
        "cell is retried once, then recorded as failed",
    )
    parser.add_argument(
        "--timings",
        metavar="PATH",
        default=None,
        help="write per-experiment execution seconds + executor stats as JSON",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="cProfile every executed cell (disables the result cache); "
        "per-cell hotspot tables land in --timings, a cross-cell "
        "summary on stderr",
    )
    parser.add_argument("--verbose", action="store_true")
    parser.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="also write a consolidated markdown report of everything run",
    )
    args = parser.parse_args(argv)

    if args.list_schemes:
        from ..chklib.schemes.registry import REGISTRY

        for alias, family, fixed in REGISTRY.describe():
            overrides = (
                " ".join(f"{k}={v}" for k, v in sorted(fixed.items())) or "-"
            )
            print(f"{alias:<18} {family:<12} {overrides}")
        return 0
    if args.experiment is None:
        parser.error("an experiment is required (or --list-schemes)")

    if args.verify:
        from ..verify import set_runtime_verification

        set_runtime_verification(True)
        # static gate before any simulation: the whole-tree analyzer
        # report against the committed baseline (memoized per process).
        # Output goes to stderr only — runner stdout is byte-compared by
        # the resume-smoke CI job and must stay result-only.
        from ..verify.analyze import check_tree

        analysis = check_tree()
        if not analysis.ok:
            for line in analysis.render_text():
                print(line, file=sys.stderr)
            print(
                "[runner] static analysis failed (new findings or stale "
                "baseline); fix them or update ANALYZE_BASELINE.json",
                file=sys.stderr,
            )
            return 2

    scale = 0.2 if args.quick else 1.0
    t0 = time.time()  # verify: allow[wall-clock] — CLI wall-time reporting
    todo = [args.experiment] if args.experiment != "all" else list(_ALL_ORDER)

    if todo == ["smoke"]:
        from ..verify.smoke import run_smoke

        results = run_smoke(seed=args.seed, verbose=args.verbose)
        lines = [
            f"  [{'ok' if rep.ok else 'FAIL'}] {name:<16} {rep.summary()}"
            for name, rep in results
        ]
        _emit("smoke", "verification smoke battery:\n" + "\n".join(lines))
        for _name, rep in results:
            rep.raise_if_violated()
        wall = time.time() - t0  # verify: allow[wall-clock] — CLI wall-time reporting
        print(f"[runner] done in {wall:.1f}s wall", file=sys.stderr)
        return 0

    # one spec per distinct grid (table2 + table3 share "table23")
    specs: Dict[str, ExperimentSpec] = {}
    for exp in todo:
        spec_name = _EXPERIMENTS[exp][0]
        if spec_name not in specs:
            specs[spec_name] = _build_spec(
                spec_name,
                args.seed,
                scale,
                ranks=args.ranks,
                topology=args.topology,
            )

    journal = RunJournal(args.resume) if args.resume else None
    if journal is not None and len(journal):
        print(
            f"[runner] resuming: {len(journal)} cells already journalled "
            f"in {args.resume}",
            file=sys.stderr,
        )
    executor = GridExecutor(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        verify=args.verify,
        profile=args.profile,
        journal=journal,
        cell_timeout=args.cell_timeout,
        raise_on_failure=False,
    )
    try:
        results = executor.run_specs(list(specs.values()))
    finally:
        if journal is not None:
            journal.close()

    report_sections = []
    for exp in todo:
        spec_name, title, view, with_summary = _EXPERIMENTS[exp]
        res = results.get(spec_name)
        if res is None:
            print(
                f"[runner] {exp}: no result "
                f"({executor.spec_errors.get(spec_name, 'spec failed')})",
                file=sys.stderr,
            )
            continue
        if view is not None and not with_summary:  # table2: just the table
            report_sections.append((title, res.view(view)))
            _emit(exp, res.render(view))
            continue
        if view is not None:  # table3: one view + the shared shapes/summary
            from ..analysis import TableResult

            narrowed = TableResult(
                name=view,
                views=[res.view(view)],
                shapes=res.shapes,
                summary_lines=res.summary_lines,
            )
            report_sections.append((title, narrowed))
            _emit(
                exp,
                narrowed.render(),
                narrowed.summary() + "\n" + _shape_report(narrowed.shapes),
            )
            continue
        report_sections.append((title, res))
        summary = _shape_report(res.shape_holds())
        if with_summary and res.summary_lines:
            summary = res.summary() + "\n" + summary
        _emit(exp, res.render(), summary)

    if args.report and report_sections:
        from ..analysis import build_report

        text = build_report(report_sections, seed=args.seed)
        with open(args.report, "w") as fh:
            fh.write(text)
        print(f"[runner] report written to {args.report}", file=sys.stderr)

    if args.timings:
        timings = {
            "experiments": {
                name: round(executor.spec_seconds(spec), 6)
                for name, spec in specs.items()
            },
            "stats": executor.stats.as_dict(),
            "jobs": executor.jobs,
            "wall_seconds": round(time.time() - t0, 3),  # verify: allow[wall-clock] — CLI wall-time reporting
        }
        if args.profile:
            timings["profiles"] = executor.cell_profiles
            timings["profile_summary"] = executor.profile_summary()
        with open(args.timings, "w") as fh:
            json.dump(timings, fh, indent=2, sort_keys=True)
        print(f"[runner] timings written to {args.timings}", file=sys.stderr)

    if args.profile and executor.cell_profiles:
        print(
            f"[runner] profile: {len(executor.cell_profiles)} cells, "
            "aggregated hotspots (tottime):",
            file=sys.stderr,
        )
        for row in executor.profile_summary():
            print(
                f"    {row['tottime_s']:9.3f}s  {row['ncalls']:>10}  "
                f"{row['function']}",
                file=sys.stderr,
            )

    print(f"[runner] grid: {executor.stats}", file=sys.stderr)
    wall = time.time() - t0  # verify: allow[wall-clock] — CLI wall-time reporting
    print(f"[runner] done in {wall:.1f}s wall", file=sys.stderr)

    if executor.failures or executor.spec_errors:
        if executor.failures:
            print(
                f"[runner] {len(executor.failures)} cell(s) FAILED:",
                file=sys.stderr,
            )
            for key, rec in executor.failures.items():
                cell = rec["cell"]
                scheme = (cell.get("scheme") or {}).get("name", "baseline")
                print(
                    f"    {cell['workload']['label']}/{scheme} "
                    f"({rec['kind']}, {rec['attempts']} attempts, "
                    f"key {key[:12]}...): {rec['error']}",
                    file=sys.stderr,
                )
        for name, msg in executor.spec_errors.items():
            print(f"[runner] spec {name}: {msg}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
