"""The declarative experiment grid: cells, specs and result lookup.

The paper's results are a grid — workloads x schemes, one simulation per
cell — and every cell is deterministic and independent (seeded RNG, no
shared state between :class:`~repro.chklib.runtime.CheckpointRuntime`
runs).  This module describes that grid as *data* instead of inline
loops:

* :class:`WorkloadSpec` — an application by registry name + constructor
  parameters (not a factory closure), so a cell can be pickled to a
  worker process and content-hashed for the on-disk result cache;
* :class:`SchemeSpec` — a checkpointing scheme by base name + resolved
  checkpoint times + option flags (skew, logging, gc, incremental,
  two-level);
* :class:`Cell` — one simulation: workload, scheme (``None`` = the
  uncheckpointed baseline), machine parameters, optional fault model and
  seed.  :func:`cell_key` derives a canonical content hash used for
  deduplication and caching;
* :class:`ExperimentSpec` — one experiment: its *baseline* cells (wave
  1), a pure ``plan`` step that turns baseline measurements into the
  dependent scheme cells (checkpoint times, skews and crash schedules
  are fractions of the baseline duration — wave 2), and a pure
  ``reduce`` step that distils all cell reports into a
  :class:`~repro.analysis.result.TableResult`.

Execution lives in :mod:`repro.experiments.executor`; nothing here runs
a simulation.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..analysis.result import TableResult
from ..chklib.runtime import RunReport
from ..chklib.schemes.base import Scheme
from ..chklib.schemes.registry import REGISTRY
from ..fault.model import FaultModel
from ..machine import MachineParams

__all__ = [
    "WorkloadSpec",
    "SchemeSpec",
    "Cell",
    "ExperimentSpec",
    "GridResults",
    "cell_key",
    "cell_to_jsonable",
    "APP_REGISTRY",
    "SCHEME_ALIASES",
]


def _app_registry() -> Dict[str, Any]:
    from ..apps import ASP, SOR, Gauss, Ising, NBody, NQueens, TSP

    return {
        "ising": Ising,
        "sor": SOR,
        "gauss": Gauss,
        "asp": ASP,
        "nbody": NBody,
        "tsp": TSP,
        "nqueens": NQueens,
    }


#: registry key -> Application class (resolved lazily to avoid cycles).
APP_REGISTRY: Dict[str, Any] = {}


def _resolve_app(kind: str):
    if not APP_REGISTRY:
        APP_REGISTRY.update(_app_registry())
    try:
        return APP_REGISTRY[kind]
    except KeyError:
        raise ValueError(
            f"unknown application kind {kind!r} "
            f"(registered: {sorted(APP_REGISTRY)})"
        ) from None


@dataclass(frozen=True)
class WorkloadSpec:
    """One table row's application, declaratively: registry name + params.

    Unlike the factory-closure :class:`~repro.experiments.workloads.Workload`,
    a spec is plain data — picklable across process boundaries and stable
    under content hashing.
    """

    label: str
    app: str
    params: Tuple[Tuple[str, Any], ...] = ()
    #: override of the fixed process-image bytes (tests use tiny images).
    image_bytes: Optional[int] = None

    @staticmethod
    def of(label: str, app: str, image_bytes: Optional[int] = None, **params) -> "WorkloadSpec":
        return WorkloadSpec(
            label=label,
            app=app,
            params=tuple(sorted(params.items())),
            image_bytes=image_bytes,
        )

    def build(self):
        """Instantiate a fresh Application for one simulation run."""
        app = _resolve_app(self.app)(**dict(self.params))
        if self.image_bytes is not None:
            app.image_bytes = int(self.image_bytes)
        return app

    # compat with the factory-based Workload interface
    def make(self):
        return self.build()


#: scheme aliases: name -> (base, fixed option overrides) — a snapshot of
#: the :data:`~repro.chklib.schemes.registry.REGISTRY` alias table, which
#: is the single source of truth (``skew`` is the one option resolved at
#: plan time, as a fraction of the checkpoint interval, so aliases only
#: pin the discrete flags).
SCHEME_ALIASES: Dict[str, Tuple[str, Dict[str, Any]]] = REGISTRY.alias_table()


@dataclass(frozen=True)
class SchemeSpec:
    """A checkpointing scheme as data: base name, times, option flags."""

    name: str  #: base registry name (``coord_nb`` ... ``indep_c``, ``cic``, ``mlog``)
    times: Tuple[float, ...] = ()
    skew: float = 0.0  #: timer-driven families (independent, cic, msglog)
    logging: bool = False  #: independent: sender-based message logging
    gc: bool = False  #: independent/msglog: collect obsolete checkpoints
    incremental: bool = False  #: coordinated: dirty-page increments
    two_level: bool = False  #: coordinated: local-disk first, trickle up
    #: coordinated marker fan-out: "all" floods every rank (the paper's
    #: 8-node protocol), "peers" restricts markers to the application's
    #: declared communication graph (scale experiments at large N).
    marker_scope: str = "all"
    #: CIC forced-checkpoint rule: "bcs" (always force) or "fdas"
    #: (promote the previous checkpoint when nothing was sent since).
    cic_rule: str = "bcs"
    #: checkpoint policy as data — a :func:`~repro.chklib.policy.policy_spec`
    #: tuple ``(kind, ((option, value), ...))``. ``None`` keeps the
    #: fixed-times schedule in :attr:`times`.
    policy: Optional[Tuple[str, Tuple[Tuple[str, Any], ...]]] = None

    @staticmethod
    def of(alias: str, times: Sequence[float], **options) -> "SchemeSpec":
        """Build a spec from a scheme *alias* (e.g. ``indep_m_log``);
        options outside the family's registry schema are rejected."""
        base, fixed = REGISTRY.resolve(alias)
        merged = {**fixed, **options}
        REGISTRY.check_options(base, merged)
        return SchemeSpec(
            name=base, times=tuple(float(t) for t in times), **merged
        )

    def build(self) -> Scheme:
        """Instantiate the scheme for one simulation run."""
        return REGISTRY.build(self)


@dataclass(frozen=True)
class Cell:
    """One grid cell: a single deterministic simulation run."""

    workload: WorkloadSpec
    scheme: Optional[SchemeSpec] = None  #: None = uncheckpointed baseline
    machine: MachineParams = field(default_factory=MachineParams.xplorer8)
    seed: int = 0
    fault: Optional[FaultModel] = None


def _jsonable(value: Any) -> Any:
    """Canonical JSON-compatible form of cell contents (recursive)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if type(value).__module__.startswith("numpy"):
        return _jsonable(value.item() if hasattr(value, "item") else value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"cell contents must be plain data, got {type(value).__name__}: {value!r}"
    )


def cell_to_jsonable(cell: Cell) -> Dict[str, Any]:
    """The cell as canonical plain data (the cache-key payload)."""
    return {"v": 1, **_jsonable(cell)}


def cell_key(cell: Cell) -> str:
    """Stable content hash of one cell's parameters."""
    payload = json.dumps(
        cell_to_jsonable(cell), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class GridResults:
    """Cell -> report lookup handed to ``plan`` and ``reduce`` steps."""

    def __init__(self, reports: Optional[Dict[str, RunReport]] = None) -> None:
        self._reports: Dict[str, RunReport] = dict(reports or {})

    def __len__(self) -> int:
        return len(self._reports)

    def __contains__(self, cell: Cell) -> bool:
        return cell_key(cell) in self._reports

    def __getitem__(self, cell: Cell) -> RunReport:
        key = cell_key(cell)
        try:
            return self._reports[key]
        except KeyError:
            raise KeyError(
                f"no result for cell {cell.workload.label!r} / "
                f"{cell.scheme.name if cell.scheme else 'baseline'} "
                f"(key {key[:12]}...) — was it listed in the spec?"
            ) from None

    def get(self, cell: Cell) -> Optional[RunReport]:
        return self._reports.get(cell_key(cell))

    def put(self, key: str, report: RunReport) -> None:
        self._reports[key] = report


@dataclass
class ExperimentSpec:
    """One experiment: baseline cells, a plan step and a reduce step.

    ``plan`` and ``reduce`` must be pure functions of the results they
    are given — every checkpoint time, skew or crash schedule they
    compute is derived from baseline measurements (not wall clocks or
    fresh randomness), so serial and parallel execution produce
    byte-identical tables.
    """

    name: str
    title: str
    #: wave-1 cells — fully concrete up front (usually scheme=None).
    baselines: Tuple[Cell, ...]
    #: wave 2: baseline results -> dependent cells (times from T_normal).
    plan: Callable[[GridResults], Sequence[Cell]]
    #: final: all cell results -> one TableResult.
    reduce: Callable[[GridResults], TableResult]

    def all_cells(self, results: GridResults) -> List[Cell]:
        return list(self.baselines) + list(self.plan(results))


def interval_times(
    normal_time: float, rounds: int, divisor: float = 1.5
) -> Tuple[float, Tuple[float, ...]]:
    """The shared checkpoint schedule rule: ``rounds`` checkpoints every
    ``T / (rounds + divisor)`` seconds — enough tail for the last round's
    background writes and commit to finish.  Returns (interval, times)."""
    interval = normal_time / (rounds + divisor)
    return interval, tuple(interval * (i + 1) for i in range(rounds))
