"""Workload definitions for the paper's tables.

Sizes and iteration counts are calibrated so uncheckpointed runs last
roughly 50-200 simulated seconds on the 8-node Xplorer model — the range
the paper's Tables 2/3 imply (checkpoint intervals of 1-7 minutes, three
checkpoints per run). The per-cell "flop" constants fold in the memory and
loop overheads of the original 30 MHz transputers; they are calibration,
documented in DESIGN.md.

Table 1 uses 21 configurations (ISING at 8 lattice sizes, SOR at 6 grid
sizes, GAUSS and ASP at 2 sizes each, NBODY, TSP, NQUEENS) — the paper's
table lists 20 rows but reports 21 comparisons; we side with the count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from ..apps import ASP, SOR, Application, Gauss, Ising, NBody, NQueens, TSP
from ..core.errors import InvariantViolation

__all__ = ["Workload", "table1_workloads", "table23_workloads", "quick_workloads"]


@dataclass(frozen=True)
class Workload:
    """One table row: a label and an application factory."""

    label: str
    factory: Callable[[], Application]

    def make(self) -> Application:
        return self.factory()


def _scaled(iters: int, scale: float, floor: int = 8) -> int:
    return max(floor, int(round(iters * scale)))


def table1_workloads(scale: float = 1.0) -> List[Workload]:
    """The 21 configurations of Table 1. ``scale`` shrinks iteration counts
    (and hence run durations) for quick runs; sizes are kept so checkpoint
    volumes stay representative."""
    ws: List[Workload] = []
    ising_sizes = [128, 160, 192, 224, 256, 320, 384, 448]
    ising_iters = [1200, 840, 580, 430, 330, 210, 146, 107]
    for n, iters in zip(ising_sizes, ising_iters):
        ws.append(
            Workload(
                f"ising-{n}",
                lambda n=n, iters=iters: Ising(n=n, iters=_scaled(iters, scale)),
            )
        )
    sor_sizes = [128, 192, 256, 320, 384, 512]
    sor_iters = [1200, 730, 410, 264, 183, 103]
    for n, iters in zip(sor_sizes, sor_iters):
        ws.append(
            Workload(
                f"sor-{n}",
                lambda n=n, iters=iters: SOR(
                    n=n, iters=_scaled(iters, scale), flops_per_cell=40.0
                ),
            )
        )
    for n in (384, 512):
        ws.append(
            Workload(f"gauss-{n}", lambda n=n: Gauss(n=n, flops_per_cell=32.0))
        )
    for n in (288, 352):
        ws.append(Workload(f"asp-{n}", lambda n=n: ASP(n=n, flops_per_cell=24.0)))
    ws.append(
        Workload(
            "nbody-1536",
            lambda: NBody(n=1536, iters=_scaled(12, scale, floor=4)),
        )
    )
    ws.append(Workload("tsp-12", lambda: TSP(n_cities=12, flops_per_node=4000.0)))
    ws.append(Workload("nqueens-12", lambda: NQueens(n=12, flops_per_node=2000.0)))
    if len(ws) != 21:
        raise InvariantViolation(
            "Table 1 workload list drifted from the paper's 21 rows",
            got=len(ws),
        )
    return ws


def table23_workloads(scale: float = 1.0) -> List[Workload]:
    """The 9 rows of Tables 2 and 3 (ISINGx2, SORx2, GAUSS, ASP, NBODY,
    TSP, NQUEENS)."""
    return [
        Workload(
            "ising-448",
            lambda: Ising(n=448, iters=_scaled(110, scale)),
        ),
        Workload(
            "ising-288",
            lambda: Ising(n=288, iters=_scaled(260, scale)),
        ),
        Workload(
            "sor-512",
            lambda: SOR(n=512, iters=_scaled(100, scale), flops_per_cell=40.0),
        ),
        Workload(
            "sor-320",
            lambda: SOR(n=320, iters=_scaled(250, scale), flops_per_cell=40.0),
        ),
        Workload("gauss-512", lambda: Gauss(n=512, flops_per_cell=32.0)),
        Workload("asp-352", lambda: ASP(n=352, flops_per_cell=24.0)),
        Workload(
            "nbody-1536",
            lambda: NBody(n=1536, iters=_scaled(12, scale, floor=4)),
        ),
        Workload("tsp-12", lambda: TSP(n_cities=12, flops_per_node=4000.0)),
        Workload("nqueens-12", lambda: NQueens(n=12, flops_per_node=2000.0)),
    ]


def quick_workloads() -> List[Workload]:
    """A tiny cross-section for smoke tests and examples."""
    return [
        Workload("sor-96", lambda: SOR(n=96, iters=120, flops_per_cell=40.0)),
        Workload("ising-96", lambda: Ising(n=96, iters=120)),
        Workload("nqueens-10", lambda: NQueens(n=10, flops_per_node=2000.0)),
    ]
