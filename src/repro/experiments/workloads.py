"""Workload definitions for the paper's tables.

Sizes and iteration counts are calibrated so uncheckpointed runs last
roughly 50-200 simulated seconds on the 8-node Xplorer model — the range
the paper's Tables 2/3 imply (checkpoint intervals of 1-7 minutes, three
checkpoints per run). The per-cell "flop" constants fold in the memory and
loop overheads of the original 30 MHz transputers; they are calibration,
documented in DESIGN.md.

Table 1 uses 21 configurations (ISING at 8 lattice sizes, SOR at 6 grid
sizes, GAUSS and ASP at 2 sizes each, NBODY, TSP, NQUEENS) — the paper's
table lists 20 rows but reports 21 comparisons; we side with the count.

The catalogues return :class:`~repro.experiments.grid.WorkloadSpec`s —
declarative (registry name + parameters) so experiment cells can be
pickled to worker processes and content-hashed for the result cache.
:class:`Workload` remains for ad-hoc factory closures in tests and
examples; it cannot participate in the cached grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from ..apps import Application
from ..core.errors import InvariantViolation
from .grid import WorkloadSpec

__all__ = [
    "Workload",
    "WorkloadSpec",
    "table1_workloads",
    "table23_workloads",
    "quick_workloads",
    "scaled_iters",
]


@dataclass(frozen=True)
class Workload:
    """An ad-hoc workload: a label and an application factory closure."""

    label: str
    factory: Callable[[], Application]

    def make(self) -> Application:
        return self.factory()


def scaled_iters(iters: int, scale: float, floor: int = 8) -> int:
    """Scale an iteration count (``--quick``), never below *floor*."""
    return max(floor, int(round(iters * scale)))


_scaled = scaled_iters  # internal alias, kept for brevity below


def table1_workloads(scale: float = 1.0) -> List[WorkloadSpec]:
    """The 21 configurations of Table 1. ``scale`` shrinks iteration counts
    (and hence run durations) for quick runs; sizes are kept so checkpoint
    volumes stay representative."""
    ws: List[WorkloadSpec] = []
    ising_sizes = [128, 160, 192, 224, 256, 320, 384, 448]
    ising_iters = [1200, 840, 580, 430, 330, 210, 146, 107]
    for n, iters in zip(ising_sizes, ising_iters):
        ws.append(
            WorkloadSpec.of(
                f"ising-{n}", "ising", n=n, iters=_scaled(iters, scale)
            )
        )
    sor_sizes = [128, 192, 256, 320, 384, 512]
    sor_iters = [1200, 730, 410, 264, 183, 103]
    for n, iters in zip(sor_sizes, sor_iters):
        ws.append(
            WorkloadSpec.of(
                f"sor-{n}",
                "sor",
                n=n,
                iters=_scaled(iters, scale),
                flops_per_cell=40.0,
            )
        )
    for n in (384, 512):
        ws.append(WorkloadSpec.of(f"gauss-{n}", "gauss", n=n, flops_per_cell=32.0))
    for n in (288, 352):
        ws.append(WorkloadSpec.of(f"asp-{n}", "asp", n=n, flops_per_cell=24.0))
    ws.append(
        WorkloadSpec.of(
            "nbody-1536", "nbody", n=1536, iters=_scaled(12, scale, floor=4)
        )
    )
    ws.append(WorkloadSpec.of("tsp-12", "tsp", n_cities=12, flops_per_node=4000.0))
    ws.append(WorkloadSpec.of("nqueens-12", "nqueens", n=12, flops_per_node=2000.0))
    if len(ws) != 21:
        raise InvariantViolation(
            "Table 1 workload list drifted from the paper's 21 rows",
            got=len(ws),
        )
    return ws


def table23_workloads(scale: float = 1.0) -> List[WorkloadSpec]:
    """The 9 rows of Tables 2 and 3 (ISINGx2, SORx2, GAUSS, ASP, NBODY,
    TSP, NQUEENS)."""
    return [
        WorkloadSpec.of("ising-448", "ising", n=448, iters=_scaled(110, scale)),
        WorkloadSpec.of("ising-288", "ising", n=288, iters=_scaled(260, scale)),
        WorkloadSpec.of(
            "sor-512", "sor", n=512, iters=_scaled(100, scale), flops_per_cell=40.0
        ),
        WorkloadSpec.of(
            "sor-320", "sor", n=320, iters=_scaled(250, scale), flops_per_cell=40.0
        ),
        WorkloadSpec.of("gauss-512", "gauss", n=512, flops_per_cell=32.0),
        WorkloadSpec.of("asp-352", "asp", n=352, flops_per_cell=24.0),
        WorkloadSpec.of(
            "nbody-1536", "nbody", n=1536, iters=_scaled(12, scale, floor=4)
        ),
        WorkloadSpec.of("tsp-12", "tsp", n_cities=12, flops_per_node=4000.0),
        WorkloadSpec.of("nqueens-12", "nqueens", n=12, flops_per_node=2000.0),
    ]


def quick_workloads() -> List[WorkloadSpec]:
    """A tiny cross-section for smoke tests and examples."""
    return [
        WorkloadSpec.of("sor-96", "sor", n=96, iters=120, flops_per_cell=40.0),
        WorkloadSpec.of("ising-96", "ising", n=96, iters=120),
        WorkloadSpec.of("nqueens-10", "nqueens", n=10, flops_per_node=2000.0),
    ]
