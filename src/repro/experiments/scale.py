"""Scale sweep: per-scheme checkpoint overhead as the machine grows.

The paper measured 8 transputers behind one host file system. This
experiment re-runs its central comparison on the hierarchical machine
model (racks × nodes, multi-server storage plane) at N ∈ {8, 64, 256,
1024, 4096} ranks — the 8-rank point is the paper's flat testbed, every
larger point a racks machine built by
:meth:`MachineParams.hierarchical`. The N=4096 cell is what the batched
kernel backend exists for (run the sweep under
``REPRO_KERNEL_BACKEND=batched``; every backend produces byte-identical
tables, so the choice is pure wall-clock).

The workload is weak-scaled SOR: the grid gains exactly four interior
rows per rank (``n = 4N + 2``) and the per-cell flop constant is chosen
so each rank performs the same simulated work per iteration regardless
of N. Checkpoint volume per rank is likewise fixed (32 KiB image), so
what changes with N is only what the paper's analysis says should
change: storage fan-in per server, marker fan-out, and synchronisation
depth.

Coordinated schemes run with ``marker_scope="peers"`` — markers travel
only along SOR's declared communication graph (±1 halo neighbours plus
the final reduce tree), O(N·deg) messages per round instead of the
all-pairs O(N²) flood that stops being simulable around a thousand
ranks.

Headline shape: per-server fan-in is N/S and S grows only as √N/4, so
concurrent-write thrash on the storage plane worsens with N — and the
staggered scheme (Coord_NBMS), which serialises writers per server,
pulls further ahead of plain Coord_NB the larger the machine gets.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from ..analysis import SchemeComparison, TableResult, TableView, fmt_seconds
from ..machine import MachineParams
from .executor import GridExecutor, run_spec
from .grid import Cell, ExperimentSpec, GridResults, WorkloadSpec, interval_times
from .harness import SCHEMES_TABLE1, WorkloadResult, scheme_spec
from .workloads import scaled_iters

__all__ = [
    "SCALE_NS",
    "scale_workload",
    "scale_machine",
    "scale_spec",
    "run_scale",
]

#: default rank counts of the sweep (8 = the paper's machine).
SCALE_NS: Tuple[int, ...] = (8, 64, 256, 1024, 4096)

#: per-rank simulated work per iteration (flops) — constant across N.
_FLOPS_PER_RANK_ITER = 600_000.0
#: interior grid rows per rank (weak scaling).
_ROWS_PER_RANK = 4
#: fixed checkpoint image per rank (bytes); keeps per-rank checkpoint
#: volume constant so storage fan-in is the only thing that scales.
_IMAGE_BYTES = 32 * 1024


def scale_workload(n_ranks: int, scale: float = 1.0) -> WorkloadSpec:
    """Weak-scaled SOR at *n_ranks*: 4 interior rows and a fixed flop
    budget per rank per iteration, 32 KiB checkpoint image."""
    n = _ROWS_PER_RANK * n_ranks + 2
    return WorkloadSpec.of(
        f"sor-weak-{n_ranks}",
        "sor",
        image_bytes=_IMAGE_BYTES,
        n=n,
        iters=scaled_iters(60, scale, floor=10),
        flops_per_cell=_FLOPS_PER_RANK_ITER / (_ROWS_PER_RANK * n),
    )


def scale_machine(n_ranks: int, topology: Optional[str] = None) -> MachineParams:
    """The machine for one sweep point: the paper's flat Xplorer at its
    native 8 ranks, a hierarchical racks machine beyond that — unless a
    ``--topology`` preset pins the shape explicitly."""
    if topology is not None:
        return MachineParams.preset(topology, n_ranks)
    if n_ranks <= 8:
        return MachineParams.xplorer(n_ranks)
    return MachineParams.hierarchical(n_ranks)


def _scale_scheme(name: str, times, interval: float):
    """The standard measured scheme, with peers-scoped markers on the
    coordinated variants (identical wire protocol, restricted fan-out)."""
    spec = scheme_spec(name, times, interval)
    if name.startswith("coord"):
        spec = dataclasses.replace(spec, marker_scope="peers")
    return spec


def scale_spec(
    ns: Optional[Sequence[int]] = None,
    seed: int = 0,
    rounds: int = 2,
    scale: float = 1.0,
    topology: Optional[str] = None,
) -> ExperimentSpec:
    """The scale sweep as a declarative grid (len(ns) × 6 runs)."""
    ns = tuple(int(n) for n in (ns if ns is not None else SCALE_NS))
    if not ns:
        raise ValueError("scale sweep needs at least one rank count")
    points = [(n, scale_workload(n, scale), scale_machine(n, topology)) for n in ns]
    baselines = tuple(
        Cell(workload=w, machine=m, seed=seed) for _, w, m in points
    )

    def cells_for(results: GridResults):
        grid = []
        for (n, w, m), base in zip(points, baselines):
            interval, times = interval_times(results[base].sim_time, rounds)
            row = {
                s: Cell(
                    workload=w,
                    scheme=_scale_scheme(s, times, interval),
                    machine=m,
                    seed=seed,
                )
                for s in SCHEMES_TABLE1
            }
            grid.append((n, w, base, interval, row))
        return grid

    def plan(results: GridResults):
        return [c for _, _, _, _, row in cells_for(results) for c in row.values()]

    def reduce(results: GridResults) -> TableResult:
        wrs: List[WorkloadResult] = []
        labels: List[str] = []
        for n, w, base, interval, row in cells_for(results):
            labels.append(f"N={n}")
            wrs.append(
                WorkloadResult(
                    label=w.label,
                    normal=results[base],
                    interval=interval,
                    rounds=rounds,
                    reports={s: results[c] for s, c in row.items()},
                )
            )
        rows = [{s: wr.per_checkpoint(s) for s in SCHEMES_TABLE1} for wr in wrs]

        def win(row) -> float:
            """Coord_NB's overhead as a multiple of Coord_NBMS's — the
            staggering payoff at this machine size."""
            return row["coord_nb"] / row["coord_nbms"]

        view = TableView(
            name="scale",
            title="Scale — overhead per checkpoint (seconds) vs machine size",
            headers=["ranks"] + [s.upper() for s in SCHEMES_TABLE1],
            rows=[
                [label] + [wr.per_checkpoint(s) for s in SCHEMES_TABLE1]
                for label, wr in zip(labels, wrs)
            ],
            fmt=fmt_seconds,
        )
        c1 = SchemeComparison.over(rows, "coord_nbms", "coord_nb")
        c2 = SchemeComparison.over(rows, "coord_nbms", "indep_m")
        shapes = {
            "nbms_beats_nb_everywhere": c1.a_wins == len(rows),
            "nbms_best_at_largest": min(
                rows[-1], key=rows[-1].__getitem__
            ) == "coord_nbms",
        }
        if len(rows) > 1:
            shapes["nbms_win_grows_with_scale"] = win(rows[-1]) > win(rows[0])
        summary_lines = [
            f"Coord_NBMS vs Coord_NB  : {c1}",
            f"Coord_NBMS vs Indep_M   : {c2}",
        ] + [
            f"staggering payoff at {label:<7}: NB/NBMS overhead x{win(row):.2f}"
            for label, row in zip(labels, rows)
        ]
        return TableResult(
            name="scale",
            views=[view],
            shapes=shapes,
            summary_lines=summary_lines,
            data={
                "ns": list(ns),
                "results": wrs,
                "rows": rows,
                "labels": labels,
                "schemes": SCHEMES_TABLE1,
            },
        )

    return ExperimentSpec(
        name="scale",
        title="Scale — overhead vs machine size",
        baselines=baselines,
        plan=plan,
        reduce=reduce,
    )


def run_scale(
    ns: Optional[Sequence[int]] = None,
    seed: int = 0,
    rounds: int = 2,
    scale: float = 1.0,
    topology: Optional[str] = None,
    executor: Optional[GridExecutor] = None,
) -> TableResult:
    """Execute the scale sweep and reduce to the rendered table."""
    return run_spec(
        scale_spec(ns=ns, seed=seed, rounds=rounds, scale=scale, topology=topology),
        executor=executor,
    )
