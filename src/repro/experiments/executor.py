"""The grid execution core: dedupe, parallel fan-out, on-disk cache.

:class:`GridExecutor` runs :class:`~repro.experiments.grid.ExperimentSpec`s
in two waves — baselines first, then the cells each spec's ``plan`` step
derives from the baseline measurements — with three orthogonal
optimisations over the old one-loop-per-module execution:

* **deduplication** — identical cells across (and within) specs run
  once.  Every experiment used to re-run the same uncheckpointed
  baselines; now ``table23``, the ablations, domino, capture and
  two-level all share one baseline run per workload;
* **parallelism** — unique cells fan out over a
  ``ProcessPoolExecutor`` (``jobs`` workers; every cell is an
  independent deterministic simulation carrying its own seed).  Results
  are keyed by content, and reduction happens after all cells of a wave
  finished, so serial and parallel execution produce byte-identical
  tables;
* **memoisation** — results persist in a content-keyed on-disk cache:
  ``sha256(canonical cell JSON + code fingerprint)`` names a JSON file
  holding the serialized :class:`~repro.chklib.runtime.RunReport`.  The
  code fingerprint hashes every ``.py`` file of the :mod:`repro`
  package, so editing any simulation code invalidates the whole cache
  rather than ever serving stale measurements.

Every report — fresh or cached, serial or parallel — is round-tripped
through ``RunReport.to_dict()/from_dict()``, so numeric types (and hence
rendered tables) never depend on which path produced a result.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis.result import TableResult
from ..chklib.runtime import CheckpointRuntime, RunReport
from .grid import Cell, ExperimentSpec, GridResults, cell_key, cell_to_jsonable

__all__ = [
    "GridExecutor",
    "ExecutorStats",
    "run_cell",
    "run_spec",
    "code_fingerprint",
    "default_cache_dir",
]

_CACHE_VERSION = 1
_FINGERPRINT: Optional[str] = None


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-grid``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-grid"


def code_fingerprint() -> str:
    """Hash of every ``.py`` file under the installed :mod:`repro` package.

    Part of every cache key: any code change invalidates all cached
    results (coarse, but never stale).
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(path.relative_to(root).as_posix().encode("utf-8"))
            h.update(b"\0")
            h.update(path.read_bytes())
        _FINGERPRINT = h.hexdigest()[:24]
    return _FINGERPRINT


def run_cell(cell: Cell) -> RunReport:
    """Execute one grid cell (one deterministic simulation)."""
    return CheckpointRuntime(
        cell.workload.build(),
        scheme=cell.scheme.build() if cell.scheme is not None else None,
        machine=cell.machine,
        seed=cell.seed,
        fault_model=cell.fault,
    ).run()


# -- worker-process side ------------------------------------------------------


def _worker_init(verify: bool) -> None:  # pragma: no cover - subprocess
    if verify:
        from ..verify import set_runtime_verification

        set_runtime_verification(True)


def _run_cell_task(cell: Cell) -> Tuple[dict, float, None]:
    """Worker entry: run one cell, return (report dict, exec seconds, None)."""
    import time

    t0 = time.perf_counter()  # verify: allow[wall-clock] — executor timing
    report = run_cell(cell)
    dt = time.perf_counter() - t0  # verify: allow[wall-clock] — executor timing
    return report.to_dict(), dt, None


#: rows per per-cell hotspot table (sorted by tottime, descending).
_PROFILE_TOP_N = 20


def _run_cell_task_profiled(cell: Cell) -> Tuple[dict, float, List[dict]]:
    """Worker entry for ``--profile``: run one cell under :mod:`cProfile`
    and return its hotspot table alongside the report.

    The table is plain serializable rows (function, ncalls, tottime,
    cumtime) so it crosses the process-pool boundary and lands in the
    ``--timings`` JSON untouched.
    """
    import cProfile
    import pstats
    import time

    profiler = cProfile.Profile()
    t0 = time.perf_counter()  # verify: allow[wall-clock] — executor timing
    profiler.enable()
    report = run_cell(cell)
    profiler.disable()
    dt = time.perf_counter() - t0  # verify: allow[wall-clock] — executor timing
    stats = pstats.Stats(profiler).stats  # type: ignore[attr-defined]
    rows = sorted(stats.items(), key=lambda kv: kv[1][2], reverse=True)
    hotspots = [
        {
            "function": f"{Path(filename).name}:{lineno}:{funcname}",
            "ncalls": ncalls,
            "tottime_s": round(tottime, 6),
            "cumtime_s": round(cumtime, 6),
        }
        for (filename, lineno, funcname), (
            _cc,
            ncalls,
            tottime,
            cumtime,
            _callers,
        ) in rows[:_PROFILE_TOP_N]
    ]
    return report.to_dict(), dt, hotspots


def run_spec(
    spec: ExperimentSpec, executor: Optional["GridExecutor"] = None
) -> TableResult:
    """Run one spec to its reduced result.  Without an explicit
    *executor* this is the plain serial, uncached path — what the
    ``run_*`` convenience wrappers and unit tests use."""
    ex = executor if executor is not None else GridExecutor(jobs=1, use_cache=False)
    return ex.run_specs([spec])[spec.name]


# -- the executor -------------------------------------------------------------


@dataclass
class ExecutorStats:
    """What one executor instance did (the determinism tests assert on
    ``executed == 0`` for a warm cache)."""

    requested: int = 0  #: cells asked for, duplicates included
    deduped: int = 0  #: duplicate cells coalesced away
    executed: int = 0  #: simulations actually run by this executor
    cache_hits: int = 0  #: results served from the on-disk cache

    def as_dict(self) -> Dict[str, int]:
        return {
            "requested": self.requested,
            "deduped": self.deduped,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
        }

    def __str__(self) -> str:
        return (
            f"{self.requested} cells requested, {self.deduped} deduplicated, "
            f"{self.cache_hits} from cache, {self.executed} executed"
        )


class GridExecutor:
    """Runs experiment specs over a deduplicated, cached, parallel grid."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache_dir: Optional[os.PathLike] = None,
        use_cache: bool = True,
        verify: bool = False,
        profile: bool = False,
    ) -> None:
        self.jobs = max(1, int(jobs if jobs is not None else (os.cpu_count() or 1)))
        # Profiling only sees cells that actually execute, so it disables
        # the result cache (a warm cache would profile nothing).
        self.use_cache = use_cache and not profile
        self.cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        self.verify = verify
        self.profile = profile
        self.stats = ExecutorStats()
        self.results = GridResults()
        #: per-cell execution seconds (0.0 for cache hits), by cell key.
        self.cell_seconds: Dict[str, float] = {}
        #: per-cell cProfile hotspot tables (``profile=True`` only), by
        #: cell key: {"cell": <jsonable cell>, "hotspots": [rows...]}.
        self.cell_profiles: Dict[str, dict] = {}

    # -- public API ---------------------------------------------------------

    def run_specs(
        self, specs: Sequence[ExperimentSpec]
    ) -> Dict[str, TableResult]:
        """Run every spec's grid (two waves, deduplicated across specs)
        and reduce each to its :class:`TableResult`."""
        self.run_cells([c for spec in specs for c in spec.baselines])
        planned = {spec.name: list(spec.plan(self.results)) for spec in specs}
        self.run_cells([c for cells in planned.values() for c in cells])
        return {spec.name: spec.reduce(self.results) for spec in specs}

    def run_cells(self, cells: Iterable[Cell]) -> GridResults:
        """Execute *cells* (deduplicated, cache-checked, fanned out)."""
        todo: List[Tuple[str, Cell]] = []
        seen: Dict[str, bool] = {}
        for cell in cells:
            key = cell_key(cell)
            self.stats.requested += 1
            if key in seen or self.results.get(cell) is not None:
                self.stats.deduped += 1
                continue
            seen[key] = True
            if self.use_cache:
                cached = self._cache_read(key)
                if cached is not None:
                    self.stats.cache_hits += 1
                    self.cell_seconds[key] = 0.0
                    self.results.put(key, cached)
                    continue
            todo.append((key, cell))
        if not todo:
            return self.results
        task = _run_cell_task_profiled if self.profile else _run_cell_task
        if self.jobs == 1:
            for key, cell in todo:
                report_dict, dt, hotspots = task(cell)
                self._absorb(key, cell, report_dict, dt, hotspots)
        else:
            self._run_parallel(todo, task)
        return self.results

    def profile_summary(self, limit: int = 10) -> List[dict]:
        """Hotspots aggregated across every profiled cell (tottime sum),
        for a one-glance "where did the grid spend its time" table."""
        agg: Dict[str, dict] = {}
        for entry in self.cell_profiles.values():
            for row in entry["hotspots"]:
                slot = agg.setdefault(
                    row["function"],
                    {"function": row["function"], "ncalls": 0, "tottime_s": 0.0},
                )
                slot["ncalls"] += row["ncalls"]
                slot["tottime_s"] = round(slot["tottime_s"] + row["tottime_s"], 6)
        return sorted(agg.values(), key=lambda r: r["tottime_s"], reverse=True)[
            :limit
        ]

    def spec_seconds(self, spec: ExperimentSpec) -> float:
        """Execution seconds attributable to *spec*: the summed runtimes
        of its cells (shared cells count toward every spec using them;
        cache hits count as zero)."""
        total = 0.0
        for cell in spec.all_cells(self.results):
            total += self.cell_seconds.get(cell_key(cell), 0.0)
        return total

    # -- internals ----------------------------------------------------------

    def _absorb(
        self,
        key: str,
        cell: Cell,
        report_dict: dict,
        dt: float,
        hotspots: Optional[List[dict]] = None,
    ) -> None:
        # uniform round-trip: fresh results go through the same dict
        # normalisation as cached ones, so tables never depend on the path.
        report = RunReport.from_dict(report_dict)
        self.stats.executed += 1
        self.cell_seconds[key] = dt
        if hotspots is not None:
            self.cell_profiles[key] = {
                "cell": cell_to_jsonable(cell),
                "seconds": round(dt, 6),
                "hotspots": hotspots,
            }
        self.results.put(key, report)
        if self.use_cache:
            self._cache_write(key, cell, report_dict)

    def _run_parallel(self, todo: List[Tuple[str, Cell]], task) -> None:
        with ProcessPoolExecutor(
            max_workers=min(self.jobs, len(todo)),
            initializer=_worker_init,
            initargs=(self.verify,),
        ) as pool:
            futures = {
                pool.submit(task, cell): (key, cell) for key, cell in todo
            }
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_EXCEPTION)
                for fut in done:
                    key, cell = futures[fut]
                    exc = fut.exception()
                    if exc is not None:
                        for p in pending:
                            p.cancel()
                        raise exc
                    report_dict, dt, hotspots = fut.result()
                    self._absorb(key, cell, report_dict, dt, hotspots)

    # -- the on-disk cache --------------------------------------------------

    def _cache_path(self, key: str) -> Path:
        full = hashlib.sha256(
            (key + ":" + code_fingerprint()).encode("utf-8")
        ).hexdigest()
        return self.cache_dir / full[:2] / f"{full}.json"

    def _cache_read(self, key: str) -> Optional[RunReport]:
        path = self._cache_path(key)
        try:
            with open(path) as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            return None
        if entry.get("version") != _CACHE_VERSION:
            return None
        try:
            return RunReport.from_dict(entry["report"])
        except (KeyError, TypeError, ValueError):
            return None

    def _cache_write(self, key: str, cell: Cell, report_dict: dict) -> None:
        path = self._cache_path(key)
        entry = {
            "version": _CACHE_VERSION,
            "fingerprint": code_fingerprint(),
            "cell": cell_to_jsonable(cell),
            "report": report_dict,
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".json"
            )
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh)
            os.replace(tmp, path)
        except OSError:  # caching is best-effort; never fail the run
            pass
