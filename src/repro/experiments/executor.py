"""The grid execution core: dedupe, parallel fan-out, on-disk cache.

:class:`GridExecutor` runs :class:`~repro.experiments.grid.ExperimentSpec`s
in two waves — baselines first, then the cells each spec's ``plan`` step
derives from the baseline measurements — with three orthogonal
optimisations over the old one-loop-per-module execution:

* **deduplication** — identical cells across (and within) specs run
  once.  Every experiment used to re-run the same uncheckpointed
  baselines; now ``table23``, the ablations, domino, capture and
  two-level all share one baseline run per workload;
* **parallelism** — unique cells fan out over a
  ``ProcessPoolExecutor`` (``jobs`` workers; every cell is an
  independent deterministic simulation carrying its own seed).  Results
  are keyed by content, and reduction happens after all cells of a wave
  finished, so serial and parallel execution produce byte-identical
  tables;
* **memoisation** — results persist in a content-keyed on-disk cache:
  ``sha256(canonical cell JSON + code fingerprint)`` names a JSON file
  holding the serialized :class:`~repro.chklib.runtime.RunReport`.  The
  code fingerprint hashes every ``.py`` file of the :mod:`repro`
  package, so editing any simulation code invalidates the whole cache
  rather than ever serving stale measurements.

Every report — fresh or cached, serial or parallel — is round-tripped
through ``RunReport.to_dict()/from_dict()``, so numeric types (and hence
rendered tables) never depend on which path produced a result.

Robustness (the crash-survivable experiment plane):

* **run journal** — with a :class:`RunJournal`, every completed cell is
  appended (flushed and fsynced) to a JSONL file keyed by cell hash and
  code fingerprint.  A re-run against the same journal replays completed
  cells without executing them, so a sweep killed mid-flight resumes
  byte-identically;
* **per-cell timeout** — ``cell_timeout`` bounds each cell's wall clock
  (enforced in the worker via ``SIGALRM``); a timed-out cell is retried
  once and then recorded as failed, never hanging the sweep;
* **worker-crash survival** — a ``BrokenProcessPool`` restarts the pool
  (bounded, with backoff) and re-runs the unfinished cells; past the
  restart budget the executor degrades to in-process serial execution;
* **failure accounting** — with ``raise_on_failure=False`` failed cells
  land in :attr:`GridExecutor.failures` (and spec-level plan/reduce
  errors in :attr:`GridExecutor.spec_errors`) instead of aborting the
  whole sweep.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis.result import TableResult
from ..chklib.runtime import CheckpointRuntime, RunReport
from .grid import Cell, ExperimentSpec, GridResults, cell_key, cell_to_jsonable

__all__ = [
    "GridExecutor",
    "ExecutorStats",
    "RunJournal",
    "CellTimeout",
    "run_cell",
    "run_spec",
    "code_fingerprint",
    "default_cache_dir",
]

_CACHE_VERSION = 1
_JOURNAL_VERSION = 1
_FINGERPRINT: Optional[str] = None

#: per-cell execution attempts before the cell is recorded as failed.
_MAX_CELL_ATTEMPTS = 2
#: process-pool restarts tolerated before degrading to serial execution.
_MAX_POOL_RESTARTS = 2


class CellTimeout(Exception):
    """A grid cell exceeded the per-cell wall-clock budget."""


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-grid``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-grid"


def code_fingerprint() -> str:
    """Hash of every ``.py`` file under the installed :mod:`repro` package.

    Part of every cache key: any code change invalidates all cached
    results (coarse, but never stale).
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(path.relative_to(root).as_posix().encode("utf-8"))
            h.update(b"\0")
            h.update(path.read_bytes())
        _FINGERPRINT = h.hexdigest()[:24]
    return _FINGERPRINT


def run_cell(cell: Cell) -> RunReport:
    """Execute one grid cell (one deterministic simulation)."""
    return CheckpointRuntime(
        cell.workload.build(),
        scheme=cell.scheme.build() if cell.scheme is not None else None,
        machine=cell.machine,
        seed=cell.seed,
        fault_model=cell.fault,
    ).run()


# -- worker-process side ------------------------------------------------------

#: per-worker cell timeout, installed by :func:`_worker_init` (seconds,
#: 0 = unbounded).  Module-global because pool tasks only receive the cell.
_CELL_TIMEOUT = 0.0


def _worker_init(verify: bool, cell_timeout: float = 0.0) -> None:  # pragma: no cover - subprocess
    global _CELL_TIMEOUT
    _CELL_TIMEOUT = float(cell_timeout)
    if verify:
        from ..verify import set_runtime_verification

        set_runtime_verification(True)


def _call_with_timeout(task, cell: Cell, timeout: float):
    """Run *task(cell)* under a wall-clock budget; raises
    :class:`CellTimeout` when it expires.  Platforms without ``SIGALRM``
    run unbounded (the timeout degrades to best-effort)."""
    if timeout <= 0 or not hasattr(signal, "SIGALRM"):
        return task(cell)

    def _expired(signum, frame):
        raise CellTimeout(
            f"cell exceeded its {timeout:g}s wall-clock budget"
        )

    old_handler = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return task(cell)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, old_handler)


def _guarded_task(cell: Cell):
    """Pool entry: one cell under the worker's installed timeout."""
    return _call_with_timeout(_run_cell_task, cell, _CELL_TIMEOUT)


def _guarded_task_profiled(cell: Cell):
    return _call_with_timeout(_run_cell_task_profiled, cell, _CELL_TIMEOUT)


def _run_cell_task(cell: Cell) -> Tuple[dict, float, None]:
    """Worker entry: run one cell, return (report dict, exec seconds, None)."""
    import time

    t0 = time.perf_counter()  # verify: allow[wall-clock] — executor timing
    report = run_cell(cell)
    dt = time.perf_counter() - t0  # verify: allow[wall-clock] — executor timing
    return report.to_dict(), dt, None


#: rows per per-cell hotspot table (sorted by tottime, descending).
_PROFILE_TOP_N = 20


def _run_cell_task_profiled(cell: Cell) -> Tuple[dict, float, List[dict]]:
    """Worker entry for ``--profile``: run one cell under :mod:`cProfile`
    and return its hotspot table alongside the report.

    The table is plain serializable rows (function, ncalls, tottime,
    cumtime) so it crosses the process-pool boundary and lands in the
    ``--timings`` JSON untouched.
    """
    import cProfile
    import pstats
    import time

    profiler = cProfile.Profile()
    t0 = time.perf_counter()  # verify: allow[wall-clock] — executor timing
    profiler.enable()
    report = run_cell(cell)
    profiler.disable()
    dt = time.perf_counter() - t0  # verify: allow[wall-clock] — executor timing
    stats = pstats.Stats(profiler).stats  # type: ignore[attr-defined]
    rows = sorted(stats.items(), key=lambda kv: kv[1][2], reverse=True)
    hotspots = [
        {
            "function": f"{Path(filename).name}:{lineno}:{funcname}",
            "ncalls": ncalls,
            "tottime_s": round(tottime, 6),
            "cumtime_s": round(cumtime, 6),
        }
        for (filename, lineno, funcname), (
            _cc,
            ncalls,
            tottime,
            cumtime,
            _callers,
        ) in rows[:_PROFILE_TOP_N]
    ]
    return report.to_dict(), dt, hotspots


def run_spec(
    spec: ExperimentSpec, executor: Optional["GridExecutor"] = None
) -> TableResult:
    """Run one spec to its reduced result.  Without an explicit
    *executor* this is the plain serial, uncached path — what the
    ``run_*`` convenience wrappers and unit tests use."""
    ex = executor if executor is not None else GridExecutor(jobs=1, use_cache=False)
    return ex.run_specs([spec])[spec.name]


# -- the run journal ----------------------------------------------------------


class RunJournal:
    """Append-only JSONL journal of completed cells — the executor's
    crash-recovery log.

    Each line is ``{"v", "fingerprint", "key", "cell", "report"}``; every
    append is flushed and fsynced, so a sweep killed at any instant loses
    at most the cell that was in flight.  Loading tolerates a torn tail
    (a half-written final line is skipped) and ignores entries written by
    a different code fingerprint — resuming across a code change re-runs
    everything rather than mixing measurements.
    """

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        self._fh = None
        self._entries: Dict[str, dict] = {}
        self.skipped_lines = 0  #: torn/stale lines ignored during load
        self._load()

    def _load(self) -> None:
        try:
            with open(self.path, encoding="utf-8") as fh:
                lines = fh.readlines()
        except OSError:
            return
        want = code_fingerprint()
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                key, report = entry["key"], entry["report"]
            except (ValueError, KeyError, TypeError):
                self.skipped_lines += 1  # torn tail or garbage — skip
                continue
            if entry.get("v") != _JOURNAL_VERSION or entry.get("fingerprint") != want:
                self.skipped_lines += 1
                continue
            self._entries[key] = report

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[dict]:
        """The journalled report dict for *key*, or ``None``."""
        return self._entries.get(key)

    def record(self, key: str, cell: Cell, report_dict: dict) -> None:
        """Durably append one completed cell."""
        if key in self._entries:
            return
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        line = json.dumps(
            {
                "v": _JOURNAL_VERSION,
                "fingerprint": code_fingerprint(),
                "key": key,
                "cell": cell_to_jsonable(cell),
                "report": report_dict,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._entries[key] = report_dict

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- the executor -------------------------------------------------------------


@dataclass
class ExecutorStats:
    """What one executor instance did (the determinism tests assert on
    ``executed == 0`` for a warm cache)."""

    requested: int = 0  #: cells asked for, duplicates included
    deduped: int = 0  #: duplicate cells coalesced away
    executed: int = 0  #: simulations actually run by this executor
    cache_hits: int = 0  #: results served from the on-disk cache
    journal_hits: int = 0  #: results replayed from the run journal
    timeouts: int = 0  #: cell executions cut off by the wall-clock budget
    retries: int = 0  #: cell executions re-attempted after a failure
    failed: int = 0  #: cells abandoned after exhausting their attempts
    pool_restarts: int = 0  #: process pools replaced after a worker crash

    def as_dict(self) -> Dict[str, int]:
        return {
            "requested": self.requested,
            "deduped": self.deduped,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "journal_hits": self.journal_hits,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "failed": self.failed,
            "pool_restarts": self.pool_restarts,
        }

    def __str__(self) -> str:
        extra = ""
        if self.journal_hits:
            extra += f", {self.journal_hits} from journal"
        if self.timeouts or self.failed or self.pool_restarts:
            extra += (
                f", {self.timeouts} timed out, {self.failed} failed, "
                f"{self.pool_restarts} pool restarts"
            )
        return (
            f"{self.requested} cells requested, {self.deduped} deduplicated, "
            f"{self.cache_hits} from cache, {self.executed} executed" + extra
        )


class GridExecutor:
    """Runs experiment specs over a deduplicated, cached, parallel grid."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache_dir: Optional[os.PathLike] = None,
        use_cache: bool = True,
        verify: bool = False,
        profile: bool = False,
        journal: Optional[RunJournal] = None,
        cell_timeout: float = 0.0,
        raise_on_failure: bool = True,
    ) -> None:
        self.jobs = max(1, int(jobs if jobs is not None else (os.cpu_count() or 1)))
        # Profiling only sees cells that actually execute, so it disables
        # the result cache (a warm cache would profile nothing).
        self.use_cache = use_cache and not profile
        self.cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        self.verify = verify
        self.profile = profile
        self.journal = journal
        self.cell_timeout = float(cell_timeout)
        #: ``True`` (the default) re-raises the first cell failure — the
        #: historical behaviour unit tests and ``run_spec`` rely on.
        #: ``False`` (the sweep runner) records failures and keeps going.
        self.raise_on_failure = raise_on_failure
        self.stats = ExecutorStats()
        self.results = GridResults()
        #: per-cell execution seconds (0.0 for cache hits), by cell key.
        self.cell_seconds: Dict[str, float] = {}
        #: per-cell cProfile hotspot tables (``profile=True`` only), by
        #: cell key: {"cell": <jsonable cell>, "hotspots": [rows...]}.
        self.cell_profiles: Dict[str, dict] = {}
        #: cells abandoned after exhausting their attempts, by cell key:
        #: {"cell": <jsonable cell>, "error", "kind", "attempts"}.
        self.failures: Dict[str, dict] = {}
        #: spec-level plan/reduce errors (``raise_on_failure=False``).
        self.spec_errors: Dict[str, str] = {}

    # -- public API ---------------------------------------------------------

    def run_specs(
        self, specs: Sequence[ExperimentSpec]
    ) -> Dict[str, TableResult]:
        """Run every spec's grid (two waves, deduplicated across specs)
        and reduce each to its :class:`TableResult`.

        With ``raise_on_failure=False`` a spec whose plan or reduce step
        fails (e.g. because a baseline cell failed) is dropped from the
        returned mapping and recorded in :attr:`spec_errors`.
        """
        self.run_cells([c for spec in specs for c in spec.baselines])
        planned: Dict[str, List[Cell]] = {}
        for spec in specs:
            try:
                planned[spec.name] = list(spec.plan(self.results))
            except Exception as exc:
                if self.raise_on_failure:
                    raise
                self.spec_errors[spec.name] = f"plan failed: {exc!r}"
                planned[spec.name] = []
        self.run_cells([c for cells in planned.values() for c in cells])
        tables: Dict[str, TableResult] = {}
        for spec in specs:
            if spec.name in self.spec_errors:
                continue
            try:
                tables[spec.name] = spec.reduce(self.results)
            except Exception as exc:
                if self.raise_on_failure:
                    raise
                self.spec_errors[spec.name] = f"reduce failed: {exc!r}"
        return tables

    def run_cells(self, cells: Iterable[Cell]) -> GridResults:
        """Execute *cells* (deduplicated, journal-replayed, cache-checked,
        fanned out)."""
        todo: List[Tuple[str, Cell]] = []
        seen: Dict[str, bool] = {}
        for cell in cells:
            key = cell_key(cell)
            self.stats.requested += 1
            if key in seen or self.results.get(cell) is not None:
                self.stats.deduped += 1
                continue
            seen[key] = True
            if self.journal is not None:
                journalled = self.journal.get(key)
                if journalled is not None:
                    self.stats.journal_hits += 1
                    self.cell_seconds[key] = 0.0
                    self.results.put(key, RunReport.from_dict(journalled))
                    continue
            if self.use_cache:
                cached = self._cache_read(key)
                if cached is not None:
                    self.stats.cache_hits += 1
                    self.cell_seconds[key] = 0.0
                    self.results.put(key, cached)
                    continue
            todo.append((key, cell))
        if not todo:
            return self.results
        task = _run_cell_task_profiled if self.profile else _run_cell_task
        if self.jobs == 1:
            self._run_serial(todo, task)
        else:
            self._run_parallel(todo, task)
        return self.results

    def profile_summary(self, limit: int = 10) -> List[dict]:
        """Hotspots aggregated across every profiled cell (tottime sum),
        for a one-glance "where did the grid spend its time" table."""
        agg: Dict[str, dict] = {}
        for entry in self.cell_profiles.values():
            for row in entry["hotspots"]:
                slot = agg.setdefault(
                    row["function"],
                    {"function": row["function"], "ncalls": 0, "tottime_s": 0.0},
                )
                slot["ncalls"] += row["ncalls"]
                slot["tottime_s"] = round(slot["tottime_s"] + row["tottime_s"], 6)
        return sorted(agg.values(), key=lambda r: r["tottime_s"], reverse=True)[
            :limit
        ]

    def spec_seconds(self, spec: ExperimentSpec) -> float:
        """Execution seconds attributable to *spec*: the summed runtimes
        of its cells (shared cells count toward every spec using them;
        cache hits count as zero)."""
        total = 0.0
        for cell in spec.all_cells(self.results):
            total += self.cell_seconds.get(cell_key(cell), 0.0)
        return total

    # -- internals ----------------------------------------------------------

    def _absorb(
        self,
        key: str,
        cell: Cell,
        report_dict: dict,
        dt: float,
        hotspots: Optional[List[dict]] = None,
    ) -> None:
        # uniform round-trip: fresh results go through the same dict
        # normalisation as cached ones, so tables never depend on the path.
        report = RunReport.from_dict(report_dict)
        self.stats.executed += 1
        self.cell_seconds[key] = dt
        if hotspots is not None:
            self.cell_profiles[key] = {
                "cell": cell_to_jsonable(cell),
                "seconds": round(dt, 6),
                "hotspots": hotspots,
            }
        self.results.put(key, report)
        if self.journal is not None:
            self.journal.record(key, cell, report_dict)
        if self.use_cache:
            self._cache_write(key, cell, report_dict)

    def _record_failure(
        self, key: str, cell: Cell, exc: BaseException, attempts: int
    ) -> None:
        kind = (
            "timeout"
            if isinstance(exc, CellTimeout)
            else "crash"
            if isinstance(exc, BrokenProcessPool)
            else "error"
        )
        self.stats.failed += 1
        self.failures[key] = {
            "cell": cell_to_jsonable(cell),
            "error": repr(exc),
            "kind": kind,
            "attempts": attempts,
        }

    def _run_serial(self, todo: List[Tuple[str, Cell]], task) -> None:
        """In-process execution (``jobs=1`` and the post-pool-crash
        degradation path), with the same timeout/retry semantics as the
        pool."""
        for key, cell in todo:
            attempts = 0
            while True:
                attempts += 1
                try:
                    report_dict, dt, hotspots = _call_with_timeout(
                        task, cell, self.cell_timeout
                    )
                except Exception as exc:
                    timed_out = isinstance(exc, CellTimeout)
                    if timed_out:
                        self.stats.timeouts += 1
                    # timeouts always get their one retry; other errors
                    # raise straight through in raise_on_failure mode
                    if self.raise_on_failure and not timed_out:
                        raise
                    if attempts < _MAX_CELL_ATTEMPTS:
                        self.stats.retries += 1
                        continue
                    self._record_failure(key, cell, exc, attempts)
                    if self.raise_on_failure:
                        raise
                    break
                else:
                    self._absorb(key, cell, report_dict, dt, hotspots)
                    break

    def _run_parallel(self, todo: List[Tuple[str, Cell]], task) -> None:
        """Pool execution that survives worker crashes and cell failures.

        Cells run in rounds: each round submits every remaining cell to a
        fresh pool and drains completions.  A failed or timed-out cell is
        retried in the next round (bounded by ``_MAX_CELL_ATTEMPTS``); a
        broken pool bumps the attempt count of every still-unfinished
        cell (the culprit is indistinguishable from its collateral) and
        restarts, with backoff, up to ``_MAX_POOL_RESTARTS`` times —
        after that the remaining cells run serially in-process.
        """
        guarded = (
            _guarded_task_profiled if task is _run_cell_task_profiled else _guarded_task
        )
        remaining: Dict[str, Cell] = dict(todo)
        attempts: Dict[str, int] = {}
        restarts = 0
        while remaining:
            try:
                self._parallel_round(remaining, attempts, guarded)
            except BrokenProcessPool:
                self.stats.pool_restarts += 1
                restarts += 1
                # every unfinished cell just lost an attempt to the crash
                dead = [
                    key
                    for key in list(remaining)
                    if attempts.get(key, 0) >= _MAX_CELL_ATTEMPTS
                ]
                for key in dead:
                    cell = remaining.pop(key)
                    self._record_failure(
                        key,
                        cell,
                        BrokenProcessPool("worker died while running this cell"),
                        attempts[key],
                    )
                if restarts > _MAX_POOL_RESTARTS:
                    # the pool keeps dying: finish the tail in-process
                    self._run_serial(list(remaining.items()), task)
                    return
                time.sleep(0.1 * restarts)  # verify: allow[wall-clock] — pool restart backoff

    def _parallel_round(
        self, remaining: Dict[str, Cell], attempts: Dict[str, int], guarded
    ) -> None:
        """One pool lifetime: submit all remaining cells, drain results.

        Mutates *remaining*/*attempts* in place; raises
        :class:`BrokenProcessPool` if the pool died (the caller restarts).
        """
        broken: Optional[BrokenProcessPool] = None
        with ProcessPoolExecutor(
            max_workers=min(self.jobs, len(remaining)),
            initializer=_worker_init,
            initargs=(self.verify, self.cell_timeout),
        ) as pool:
            futures = {}
            try:
                for key, cell in remaining.items():
                    futures[pool.submit(guarded, cell)] = (key, cell)
            except BrokenProcessPool as exc:
                broken = exc  # pool died mid-submission; drain what we have
            for fut in as_completed(futures):
                key, cell = futures[fut]
                exc = fut.exception()
                if exc is None:
                    report_dict, dt, hotspots = fut.result()
                    self._absorb(key, cell, report_dict, dt, hotspots)
                    remaining.pop(key, None)
                    continue
                if isinstance(exc, BrokenProcessPool):
                    attempts[key] = attempts.get(key, 0) + 1
                    broken = exc
                    continue
                # the cell itself failed (simulation error or timeout)
                if isinstance(exc, CellTimeout):
                    self.stats.timeouts += 1
                if self.raise_on_failure and not isinstance(exc, CellTimeout):
                    for other in futures:
                        other.cancel()
                    raise exc
                attempts[key] = attempts.get(key, 0) + 1
                if attempts[key] < _MAX_CELL_ATTEMPTS:
                    self.stats.retries += 1  # retried next round
                else:
                    remaining.pop(key, None)
                    self._record_failure(key, cell, exc, attempts[key])
                    if self.raise_on_failure:
                        for other in futures:
                            other.cancel()
                        raise exc
        if broken is not None:
            raise broken

    # -- the on-disk cache --------------------------------------------------

    def _cache_path(self, key: str) -> Path:
        full = hashlib.sha256(
            (key + ":" + code_fingerprint()).encode("utf-8")
        ).hexdigest()
        return self.cache_dir / full[:2] / f"{full}.json"

    def _cache_read(self, key: str) -> Optional[RunReport]:
        path = self._cache_path(key)
        try:
            with open(path) as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            return None
        if entry.get("version") != _CACHE_VERSION:
            return None
        try:
            return RunReport.from_dict(entry["report"])
        except (KeyError, TypeError, ValueError):
            return None

    def _cache_write(self, key: str, cell: Cell, report_dict: dict) -> None:
        path = self._cache_path(key)
        entry = {
            "version": _CACHE_VERSION,
            "fingerprint": code_fingerprint(),
            "cell": cell_to_jsonable(cell),
            "report": report_dict,
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".json"
            )
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh)
            os.replace(tmp, path)
        except OSError:  # caching is best-effort; never fail the run
            pass
