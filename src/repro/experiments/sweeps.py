"""Parameter sweeps supporting the paper's contention analysis (A3).

S1 — *writer-count sweep*: the per-checkpoint cost of ``Coord_NB`` as the
node count grows: near-simultaneous writes queue at the single stable
storage, so the blocked window scales superlinearly in the writer count.

S2 — *storage-bandwidth sweep*: overhead of ``Coord_NB`` vs ``Coord_NBMS``
as the storage path speeds up: staggering matters most when storage is
slow; the curves converge as the bottleneck disappears.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis import TableResult, TableView, fmt_seconds
from ..machine import MachineParams
from .executor import GridExecutor, run_spec
from .grid import Cell, ExperimentSpec, GridResults, WorkloadSpec, interval_times
from .harness import scheme_spec
from .workloads import scaled_iters

__all__ = [
    "writer_sweep_spec",
    "run_writer_sweep",
    "bandwidth_sweep_spec",
    "run_bandwidth_sweep",
]


def writer_sweep_spec(
    node_counts: Sequence[int] = (2, 4, 8),
    seed: int = 0,
    rounds: int = 2,
    base_grid: int = 128,
    scale: float = 1.0,
    topology: Optional[str] = None,
) -> ExperimentSpec:
    """S1, weak scaling: the SOR grid grows with the node count so each
    rank's checkpoint stays the same size; total volume scales linearly in
    the writer count.  ``topology`` swaps the flat Xplorer for a named
    machine preset at each node count (runner ``--topology``)."""
    node_counts = list(node_counts)
    points = []
    for n in node_counts:
        grid = int(round(base_grid * (n / node_counts[0]) ** 0.5 / 2)) * 2
        points.append(
            (
                n,
                WorkloadSpec.of(
                    f"sor{grid}@{n}",
                    "sor",
                    n=grid,
                    iters=scaled_iters(200, scale),
                    flops_per_cell=40.0,
                ),
                MachineParams.preset(topology, n)
                if topology is not None
                else MachineParams.xplorer(n),
            )
        )
    baselines = tuple(
        Cell(workload=w, machine=m, seed=seed) for _, w, m in points
    )

    def cells_for(results: GridResults):
        grid = []
        for (n, w, m), base in zip(points, baselines):
            interval, times = interval_times(results[base].sim_time, rounds)
            cell = Cell(
                workload=w,
                scheme=scheme_spec("coord_nb", times, interval),
                machine=m,
                seed=seed,
            )
            grid.append((n, base, cell))
        return grid

    def plan(results: GridResults):
        return [cell for _, _, cell in cells_for(results)]

    def reduce(results: GridResults) -> TableResult:
        per_ckpt: Dict[int, float] = {}
        for n, base, cell in cells_for(results):
            per_ckpt[n] = (
                results[cell].sim_time - results[base].sim_time
            ) / rounds
        n0 = node_counts[0]
        base_cost = per_ckpt[n0]
        view = TableView(
            name="sweep-writers",
            title="S1: Coord_NB cost vs number of writers",
            headers=["nodes", "NB overhead/ckpt (s)", "vs fewest", "volume x"],
            rows=[
                [
                    n,
                    fmt_seconds(per_ckpt[n]),
                    f"{per_ckpt[n] / base_cost:.1f}x",
                    f"{n / n0:.1f}x",
                ]
                for n in node_counts
            ],
        )
        xs = [per_ckpt[n] for n in node_counts]
        nl = node_counts[-1]
        return TableResult(
            name="sweep-writers",
            views=[view],
            shapes={
                "cost_grows_with_writers": all(
                    b > a for a, b in zip(xs, xs[1:])
                ),
                # superlinear in the checkpoint volume: with k writers the
                # volume grows k-fold, the cost more (queueing + thrash +
                # lost quiescence window alignment).
                "superlinear_in_volume": xs[-1] / xs[0] > (nl / n0),
            },
            summary_lines=[
                f"{n0}->{nl} nodes: cost x{xs[-1] / xs[0]:.1f} "
                f"for volume x{nl / n0:.1f}",
            ],
            data={"node_counts": node_counts, "per_checkpoint": per_ckpt},
        )

    return ExperimentSpec(
        name="sweep-writers",
        title="S1 — writer-count sweep",
        baselines=baselines,
        plan=plan,
        reduce=reduce,
    )


def run_writer_sweep(
    node_counts: Sequence[int] = (2, 4, 8),
    seed: int = 0,
    rounds: int = 2,
    base_grid: int = 128,
    scale: float = 1.0,
    executor: Optional[GridExecutor] = None,
) -> TableResult:
    return run_spec(
        writer_sweep_spec(
            node_counts=node_counts,
            seed=seed,
            rounds=rounds,
            base_grid=base_grid,
            scale=scale,
        ),
        executor=executor,
    )


def bandwidth_sweep_spec(
    bandwidths: Sequence[float] = (400e3, 800e3, 1.6e6, 3.2e6),
    seed: int = 0,
    rounds: int = 2,
    workload: Optional[WorkloadSpec] = None,
    scale: float = 1.0,
    machine: Optional[MachineParams] = None,
) -> ExperimentSpec:
    """S2: Coord_NB vs Coord_NBMS overhead as storage bandwidth grows.
    ``machine`` overrides the base machine the bandwidths are applied to
    (default: the paper's 8-node Xplorer)."""
    bandwidths = list(bandwidths)
    workload = workload or WorkloadSpec.of(
        "sor-256",
        "sor",
        n=256,
        iters=scaled_iters(200, scale),
        flops_per_cell=40.0,
    )
    base_machine = machine or MachineParams.xplorer8()
    machines = [
        base_machine.with_storage(bandwidth=bw) for bw in bandwidths
    ]
    baselines = tuple(
        Cell(workload=workload, machine=m, seed=seed) for m in machines
    )

    def cells_for(results: GridResults):
        grid = []
        for bw, m, base in zip(bandwidths, machines, baselines):
            interval, times = interval_times(results[base].sim_time, rounds)
            row = {
                s: Cell(
                    workload=workload,
                    scheme=scheme_spec(s, times, interval),
                    machine=m,
                    seed=seed,
                )
                for s in ("coord_nb", "coord_nbms")
            }
            grid.append((bw, base, row))
        return grid

    def plan(results: GridResults):
        return [c for _, _, row in cells_for(results) for c in row.values()]

    def reduce(results: GridResults) -> TableResult:
        overhead_pct: Dict[float, Dict[str, float]] = {}
        for bw, base, row in cells_for(results):
            normal = results[base].sim_time
            overhead_pct[bw] = {
                s: 100.0 * (results[c].sim_time - normal) / normal
                for s, c in row.items()
            }
        body = []
        for bw in bandwidths:
            row = overhead_pct[bw]
            ratio = (
                row["coord_nb"] / row["coord_nbms"] if row["coord_nbms"] else 0
            )
            body.append(
                [
                    f"{bw / 1e3:.0f}",
                    f"{row['coord_nb']:.2f}",
                    f"{row['coord_nbms']:.2f}",
                    f"{ratio:.1f}x",
                ]
            )
        view = TableView(
            name="sweep-storage",
            title="S2: overhead vs stable-storage bandwidth",
            headers=["storage B/W (KB/s)", "NB %", "NBMS %", "NB/NBMS"],
            rows=body,
        )
        slowest = overhead_pct[min(bandwidths)]
        fastest = overhead_pct[max(bandwidths)]
        gap_slow = slowest["coord_nb"] - slowest["coord_nbms"]
        gap_fast = fastest["coord_nb"] - fastest["coord_nbms"]
        return TableResult(
            name="sweep-storage",
            views=[view],
            shapes={
                "overhead_falls_with_bandwidth": (
                    fastest["coord_nb"] < slowest["coord_nb"]
                    and fastest["coord_nbms"] < slowest["coord_nbms"]
                ),
                # the *absolute* advantage of staggering (percentage
                # points) shrinks as the storage bottleneck disappears; the
                # multiplicative ratio is roughly scale-invariant.
                "staggering_matters_most_when_slow": gap_slow > 2 * gap_fast,
            },
            summary_lines=[
                f"NB-NBMS gap: {gap_slow:.2f} pp at slowest, "
                f"{gap_fast:.2f} pp at fastest",
            ],
            data={"bandwidths": bandwidths, "overhead_pct": overhead_pct},
        )

    return ExperimentSpec(
        name="sweep-storage",
        title="S2 — storage-bandwidth sweep",
        baselines=baselines,
        plan=plan,
        reduce=reduce,
    )


def run_bandwidth_sweep(
    bandwidths: Sequence[float] = (400e3, 800e3, 1.6e6, 3.2e6),
    seed: int = 0,
    rounds: int = 2,
    workload: Optional[WorkloadSpec] = None,
    scale: float = 1.0,
    executor: Optional[GridExecutor] = None,
) -> TableResult:
    return run_spec(
        bandwidth_sweep_spec(
            bandwidths=bandwidths,
            seed=seed,
            rounds=rounds,
            workload=workload,
            scale=scale,
        ),
        executor=executor,
    )
