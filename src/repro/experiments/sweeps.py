"""Parameter sweeps supporting the paper's contention analysis (A3).

S1 — *writer-count sweep*: the per-checkpoint cost of ``Coord_NB`` as the
node count grows: near-simultaneous writes queue at the single stable
storage, so the blocked window scales superlinearly in the writer count.

S2 — *storage-bandwidth sweep*: overhead of ``Coord_NB`` vs ``Coord_NBMS``
as the storage path speeds up: staggering matters most when storage is
slow; the curves converge as the bottleneck disappears.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..analysis import fmt_seconds, render_table
from ..apps import SOR, Application
from ..machine import MachineParams
from .harness import run_workload
from .workloads import Workload

__all__ = ["WriterSweep", "run_writer_sweep", "BandwidthSweep", "run_bandwidth_sweep"]


def _default_app_factory() -> Callable[[], Application]:
    return lambda: SOR(n=256, iters=200, flops_per_cell=40.0)


@dataclass
class WriterSweep:
    """Per-checkpoint NB cost as writers scale at *constant per-rank state*
    (weak scaling: each extra node brings its own checkpoint volume)."""

    node_counts: List[int]
    per_checkpoint: Dict[int, float]

    def render(self) -> str:
        headers = ["nodes", "NB overhead/ckpt (s)", "vs fewest", "volume x"]
        n0 = self.node_counts[0]
        base = self.per_checkpoint[n0]
        body = [
            [
                n,
                fmt_seconds(self.per_checkpoint[n]),
                f"{self.per_checkpoint[n] / base:.1f}x",
                f"{n / n0:.1f}x",
            ]
            for n in self.node_counts
        ]
        return render_table(
            headers, body, title="S1: Coord_NB cost vs number of writers"
        )

    def shape_holds(self) -> Dict[str, bool]:
        xs = [self.per_checkpoint[n] for n in self.node_counts]
        n0, nl = self.node_counts[0], self.node_counts[-1]
        return {
            "cost_grows_with_writers": all(b > a for a, b in zip(xs, xs[1:])),
            # superlinear in the checkpoint volume: with k writers the
            # volume grows k-fold, the cost more (queueing + thrash + lost
            # quiescence window alignment).
            "superlinear_in_volume": xs[-1] / xs[0] > (nl / n0),
        }


def run_writer_sweep(
    node_counts: Sequence[int] = (2, 4, 8),
    seed: int = 0,
    rounds: int = 2,
    base_grid: int = 128,
) -> WriterSweep:
    """Weak-scaling sweep: the SOR grid grows with the node count so each
    rank's checkpoint stays the same size; total volume scales linearly in
    the writer count."""
    per_ckpt = {}
    for n in node_counts:
        grid = int(round(base_grid * (n / node_counts[0]) ** 0.5 / 2)) * 2
        workload = Workload(
            f"sor{grid}@{n}",
            lambda grid=grid: SOR(n=grid, iters=200, flops_per_cell=40.0),
        )
        res = run_workload(
            workload,
            ("coord_nb",),
            rounds=rounds,
            seed=seed,
            machine=MachineParams.xplorer(n),
        )
        per_ckpt[n] = res.per_checkpoint("coord_nb")
    return WriterSweep(node_counts=list(node_counts), per_checkpoint=per_ckpt)


@dataclass
class BandwidthSweep:
    bandwidths: List[float]
    overhead_pct: Dict[float, Dict[str, float]]

    def render(self) -> str:
        headers = ["storage B/W (KB/s)", "NB %", "NBMS %", "NB/NBMS"]
        body = []
        for bw in self.bandwidths:
            row = self.overhead_pct[bw]
            ratio = row["coord_nb"] / row["coord_nbms"] if row["coord_nbms"] else 0
            body.append(
                [f"{bw / 1e3:.0f}", f"{row['coord_nb']:.2f}",
                 f"{row['coord_nbms']:.2f}", f"{ratio:.1f}x"]
            )
        return render_table(
            headers, body, title="S2: overhead vs stable-storage bandwidth"
        )

    def shape_holds(self) -> Dict[str, bool]:
        slowest = self.overhead_pct[min(self.bandwidths)]
        fastest = self.overhead_pct[max(self.bandwidths)]
        gap_slow = slowest["coord_nb"] - slowest["coord_nbms"]
        gap_fast = fastest["coord_nb"] - fastest["coord_nbms"]
        return {
            "overhead_falls_with_bandwidth": (
                fastest["coord_nb"] < slowest["coord_nb"]
                and fastest["coord_nbms"] < slowest["coord_nbms"]
            ),
            # the *absolute* advantage of staggering (percentage points)
            # shrinks as the storage bottleneck disappears; the
            # multiplicative ratio is roughly scale-invariant.
            "staggering_matters_most_when_slow": gap_slow > 2 * gap_fast,
        }


def run_bandwidth_sweep(
    bandwidths: Sequence[float] = (400e3, 800e3, 1.6e6, 3.2e6),
    seed: int = 0,
    rounds: int = 2,
    app_factory: Optional[Callable[[], Application]] = None,
) -> BandwidthSweep:
    app_factory = app_factory or _default_app_factory()
    out: Dict[float, Dict[str, float]] = {}
    for bw in bandwidths:
        machine = MachineParams.xplorer8().with_storage(bandwidth=bw)
        workload = Workload(f"sor@bw{bw:.0f}", app_factory)
        res = run_workload(
            workload,
            ("coord_nb", "coord_nbms"),
            rounds=rounds,
            seed=seed,
            machine=machine,
        )
        out[bw] = {
            "coord_nb": res.overhead_percent("coord_nb"),
            "coord_nbms": res.overhead_percent("coord_nbms"),
        }
    return BandwidthSweep(bandwidths=list(bandwidths), overhead_pct=out)
