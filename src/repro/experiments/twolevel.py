"""E3 extension: two-level stable storage.

The authors' own follow-up technique ("Using two-level stable storage for
efficient checkpointing", Silva & Silva): the capture write goes to the
node's private local disk — fast, contention-free, outside the interconnect
— and a background "trickle" copies it to the global server afterwards.

Measured effects:

* the blocking write of ``Coord_NB`` becomes cheap (no queueing at the
  global server, no interconnect crossing), collapsing most of the gap to
  the memory-buffered variants without needing a spare memory buffer;
* recovery reads restore from the local disks in parallel instead of
  queueing at the global server;
* the global server still receives every byte (the trickle), so the
  safety level against losing a node's disk is retained, just delayed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis import fmt_seconds, render_table
from ..chklib import CheckpointRuntime, CoordinatedScheme, FaultPlan
from ..machine import MachineParams
from .workloads import Workload, table23_workloads

__all__ = ["TwoLevelResult", "run_two_level"]


@dataclass
class TwoLevelRow:
    label: str
    scheme: str
    overhead_pct: float
    blocked_s: float
    recovery_s: float
    global_bytes: float


@dataclass
class TwoLevelResult:
    rows: List[TwoLevelRow]

    def render(self) -> str:
        headers = [
            "application",
            "scheme",
            "overhead",
            "blocked(s)",
            "recovery(s)",
            "global MB",
        ]
        body = [
            [
                r.label,
                r.scheme,
                f"{r.overhead_pct:.2f} %",
                fmt_seconds(r.blocked_s),
                f"{r.recovery_s:.3f}",
                f"{r.global_bytes / 1e6:.2f}",
            ]
            for r in self.rows
        ]
        return render_table(headers, body, title="E3: two-level stable storage")

    def shape_holds(self) -> Dict[str, bool]:
        by = {}
        for r in self.rows:
            by.setdefault(r.label, {})[r.scheme] = r
        checks = {
            "nb_overhead_collapses": True,
            "recovery_faster": True,
            "global_still_receives_everything": True,
        }
        for label, schemes in by.items():
            nb, nb2 = schemes["coord_nb"], schemes["coord_nb_2l"]
            # the blocking cost collapses; what remains is the (NBM-like)
            # background interference of the unstaggered trickle
            checks["nb_overhead_collapses"] &= (
                nb2.overhead_pct < 0.55 * nb.overhead_pct
                and nb2.blocked_s < 0.1 * nb.blocked_s
            )
            checks["recovery_faster"] &= nb2.recovery_s < nb.recovery_s
            checks["global_still_receives_everything"] &= (
                nb2.global_bytes >= 0.95 * nb.global_bytes
            )
        return checks


def run_two_level(
    workloads: Optional[List[Workload]] = None,
    seed: int = 0,
    machine: Optional[MachineParams] = None,
    rounds: int = 3,
) -> TwoLevelResult:
    if workloads is None:
        wanted = ("ising-288", "sor-320")
        workloads = [w for w in table23_workloads() if w.label in wanted]
    machine = machine or MachineParams.xplorer8()
    rows: List[TwoLevelRow] = []
    for workload in workloads:
        normal = CheckpointRuntime(workload.make(), machine=machine, seed=seed).run()
        T = normal.sim_time
        interval = T / (rounds + 1.5)
        times = [interval * (i + 1) for i in range(rounds)]
        for scheme_factory in (
            lambda: CoordinatedScheme.NB(times),
            lambda: CoordinatedScheme.NB(times, two_level=True),
            lambda: CoordinatedScheme.NBMS(times),
            lambda: CoordinatedScheme.NBMS(times, two_level=True),
        ):
            # failure-free overhead
            report = CheckpointRuntime(
                workload.make(),
                scheme=scheme_factory(),
                machine=machine,
                seed=seed,
            ).run()
            # recovery duration at a crash
            crashed = CheckpointRuntime(
                workload.make(),
                scheme=scheme_factory(),
                machine=machine,
                seed=seed,
                fault_plan=FaultPlan.single(0.9 * T),
            ).run()
            rows.append(
                TwoLevelRow(
                    label=workload.label,
                    scheme=report.scheme,
                    overhead_pct=100 * (report.sim_time - T) / T,
                    blocked_s=report.blocked_time,
                    recovery_s=crashed.recoveries[0].duration,
                    global_bytes=report.storage_bytes_written,
                )
            )
    return TwoLevelResult(rows=rows)
