"""E3 extension: two-level stable storage.

The authors' own follow-up technique ("Using two-level stable storage for
efficient checkpointing", Silva & Silva): the capture write goes to the
node's private local disk — fast, contention-free, outside the interconnect
— and a background "trickle" copies it to the global server afterwards.

Measured effects:

* the blocking write of ``Coord_NB`` becomes cheap (no queueing at the
  global server, no interconnect crossing), collapsing most of the gap to
  the memory-buffered variants without needing a spare memory buffer;
* recovery reads restore from the local disks in parallel instead of
  queueing at the global server;
* the global server still receives every byte (the trickle), so the
  safety level against losing a node's disk is retained, just delayed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis import TableResult, TableView, fmt_seconds
from ..fault.model import FaultModel
from ..machine import MachineParams
from .executor import GridExecutor, run_spec
from .grid import Cell, ExperimentSpec, GridResults, SchemeSpec, WorkloadSpec, interval_times
from .workloads import table23_workloads

__all__ = ["TwoLevelRow", "two_level_spec", "run_two_level"]

_VARIANTS = ("coord_nb", "coord_nb_2l", "coord_nbms", "coord_nbms_2l")


@dataclass
class TwoLevelRow:
    label: str
    scheme: str
    overhead_pct: float
    blocked_s: float
    recovery_s: float
    global_bytes: float


def two_level_spec(
    workloads: Optional[List[WorkloadSpec]] = None,
    seed: int = 0,
    machine: Optional[MachineParams] = None,
    rounds: int = 3,
    scale: float = 1.0,
) -> ExperimentSpec:
    """E3: NB and NBMS with and without the two-level storage path."""
    if workloads is None:
        wanted = ("ising-288", "sor-320")
        workloads = [w for w in table23_workloads(scale) if w.label in wanted]
    machine = machine or MachineParams.xplorer8()
    baselines = tuple(
        Cell(workload=w, machine=machine, seed=seed) for w in workloads
    )

    def cells_for(results: GridResults):
        grid = []
        for w, base in zip(workloads, baselines):
            T = results[base].sim_time
            _, times = interval_times(T, rounds)
            crash = FaultModel.machine_crash(0.9 * T)
            row = []
            for alias in _VARIANTS:
                spec = SchemeSpec.of(alias, times)
                ff = Cell(workload=w, scheme=spec, machine=machine, seed=seed)
                crashed = Cell(
                    workload=w,
                    scheme=spec,
                    machine=machine,
                    seed=seed,
                    fault=crash,
                )
                row.append((alias, ff, crashed))
            grid.append((w, base, row))
        return grid

    def plan(results: GridResults):
        return [
            c
            for _, _, row in cells_for(results)
            for _, ff, crashed in row
            for c in (ff, crashed)
        ]

    def reduce(results: GridResults) -> TableResult:
        rows: List[TwoLevelRow] = []
        for w, base, row in cells_for(results):
            T = results[base].sim_time
            for _, ff, crashed in row:
                report = results[ff]
                rows.append(
                    TwoLevelRow(
                        label=w.label,
                        scheme=report.scheme,
                        overhead_pct=100 * (report.sim_time - T) / T,
                        blocked_s=report.blocked_time,
                        recovery_s=results[crashed].recoveries[0].duration,
                        global_bytes=report.storage_bytes_written,
                    )
                )
        view = TableView(
            name="two-level",
            title="E3: two-level stable storage",
            headers=[
                "application",
                "scheme",
                "overhead",
                "blocked(s)",
                "recovery(s)",
                "global MB",
            ],
            rows=[
                [
                    r.label,
                    r.scheme,
                    f"{r.overhead_pct:.2f} %",
                    fmt_seconds(r.blocked_s),
                    f"{r.recovery_s:.3f}",
                    f"{r.global_bytes / 1e6:.2f}",
                ]
                for r in rows
            ],
        )
        by: Dict[str, Dict[str, TwoLevelRow]] = {}
        for r in rows:
            by.setdefault(r.label, {})[r.scheme] = r
        checks = {
            "nb_overhead_collapses": True,
            "recovery_faster": True,
            "global_still_receives_everything": True,
        }
        for label, schemes in by.items():
            nb, nb2 = schemes["coord_nb"], schemes["coord_nb_2l"]
            # the blocking cost collapses; what remains is the (NBM-like)
            # background interference of the unstaggered trickle
            checks["nb_overhead_collapses"] &= (
                nb2.overhead_pct < 0.55 * nb.overhead_pct
                and nb2.blocked_s < 0.1 * nb.blocked_s
            )
            checks["recovery_faster"] &= nb2.recovery_s < nb.recovery_s
            checks["global_still_receives_everything"] &= (
                nb2.global_bytes >= 0.95 * nb.global_bytes
            )
        return TableResult(
            name="two-level",
            views=[view],
            shapes=checks,
            summary_lines=[
                f"{len(by)} workloads x {len(_VARIANTS)} variants",
            ],
            data={"rows": rows, "by_label": by},
        )

    return ExperimentSpec(
        name="two-level",
        title="E3 — two-level stable storage",
        baselines=baselines,
        plan=plan,
        reduce=reduce,
    )


def run_two_level(
    workloads: Optional[List[WorkloadSpec]] = None,
    seed: int = 0,
    machine: Optional[MachineParams] = None,
    rounds: int = 3,
    scale: float = 1.0,
    executor: Optional[GridExecutor] = None,
) -> TableResult:
    return run_spec(
        two_level_spec(
            workloads=workloads,
            seed=seed,
            machine=machine,
            rounds=rounds,
            scale=scale,
        ),
        executor=executor,
    )
