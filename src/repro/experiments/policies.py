"""P1: checkpoint policies — fixed-interval vs fault-adaptive placement.

The paper fixes the checkpoint schedule up front (N checkpoints at
``T / (N + 1.5)``).  The policy subsystem (:mod:`repro.chklib.policy`)
makes placement a first-class, composable decision; this experiment
demonstrates the headline case on both scheme families: a
failure-rate-adaptive policy *changes its checkpoint frequency* in
response to observed faults, while costing nothing when the machine
behaves.

Three conditions per scheme, all at the same base interval:

* ``periodic`` — a fixed :class:`~repro.chklib.policy.Periodic` policy
  under a machine crash plus transient storage faults (the control);
* ``adaptive`` — :class:`~repro.chklib.policy.FailureRateAdaptive`
  under the identical fault model: observed recoveries and storage
  faults must narrow the interval (``policy.narrowings > 0``), pulling
  the mean decided interval below the quiet run's;
* ``adaptive-quiet`` — the same adaptive policy on a fault-free run: it
  must never narrow, and may relax toward its upper bound.

Every run still produces the exact undisturbed application result, and
every recorded ``policy.*`` event stream passes the
:class:`~repro.verify.invariants.PolicyAdaptation` trace invariants
(runner ``--verify``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis import TableResult, TableView
from ..chklib import RunReport, policy_spec
from ..fault import FaultModel, StorageFaultSpec
from ..machine import MachineParams
from .executor import GridExecutor, run_spec
from .grid import Cell, ExperimentSpec, GridResults, SchemeSpec, WorkloadSpec
from .workloads import scaled_iters

__all__ = ["policies_spec", "run_policies", "POLICY_SCHEMES"]

#: one coordinated and one independent representative.
POLICY_SCHEMES = ("coord_nb", "indep_m_log")

#: the three policy conditions of the experiment.
_CONDITIONS = ("periodic", "adaptive", "adaptive-quiet")


def _default_workload(scale: float) -> WorkloadSpec:
    return WorkloadSpec.of(
        "sor-26",
        "sor",
        image_bytes=32 * 1024,
        n=26,
        iters=scaled_iters(10, scale),
        flops_per_cell=3000.0,
    )


def policies_spec(
    seed: int = 0,
    machine: Optional[MachineParams] = None,
    workload: Optional[WorkloadSpec] = None,
    scale: float = 1.0,
    fault_p: float = 0.08,
) -> ExperimentSpec:
    """The policy comparison grid (deterministic per *seed*)."""
    machine = machine or MachineParams(n_nodes=4)
    workload = workload or _default_workload(scale)
    baseline = Cell(workload=workload, machine=machine, seed=seed)

    def cells_for(results: GridResults) -> Dict[Tuple[str, str], Cell]:
        T = results[baseline].sim_time
        interval = T / 4
        # stop initiating near the end: the last round's background
        # writes and commit need the same tail the fixed schedule leaves.
        stop = 4 * T
        faults = FaultModel(
            machine_crash_times=(0.55 * T,),
            storage=StorageFaultSpec(write_fail_p=fault_p, read_fail_p=fault_p),
        )
        policies = {
            "periodic": policy_spec("periodic", interval=interval, stop=stop),
            "adaptive": policy_spec(
                "failure_adaptive", base_interval=interval, stop=stop
            ),
            "adaptive-quiet": policy_spec(
                "failure_adaptive", base_interval=interval, stop=stop
            ),
        }
        cells = {}
        for name in POLICY_SCHEMES:
            skew = interval / 20 if name.startswith("indep") else 0.0
            for cond in _CONDITIONS:
                cells[(name, cond)] = Cell(
                    workload=workload,
                    scheme=SchemeSpec.of(
                        name, (), skew=skew, policy=policies[cond]
                    ),
                    machine=machine,
                    seed=seed,
                    fault=None if cond == "adaptive-quiet" else faults,
                )
        return cells

    def plan(results: GridResults):
        return list(cells_for(results).values())

    def reduce(results: GridResults) -> TableResult:
        T = results[baseline].sim_time
        expected = results[baseline].result["sum"]
        reports = {
            key: results[c] for key, c in cells_for(results).items()
        }

        def mean_interval(rep: RunReport) -> float:
            decisions = rep.counters.get("policy.decisions", 0.0)
            if not decisions:
                return 0.0
            return rep.counters.get("policy.interval_sum", 0.0) / decisions

        def row(name: str, cond: str) -> List[str]:
            rep = reports[(name, cond)]
            return [
                name,
                cond,
                f"{rep.sim_time / T:.2f}x",
                f"{rep.counters.get('policy.decisions', 0):.0f}",
                f"{mean_interval(rep) / T:.3f}T",
                f"{rep.counters.get('policy.narrowings', 0):.0f}",
                f"{rep.counters.get('policy.widenings', 0):.0f}",
                str(len(rep.recoveries)),
            ]

        view = TableView(
            name="policies",
            title=(
                "P1: checkpoint policies — fixed vs failure-rate-adaptive "
                "(crash at 0.55 T + transient storage faults)"
            ),
            headers=[
                "scheme",
                "policy",
                "time",
                "decisions",
                "mean interval",
                "narrowed",
                "widened",
                "recoveries",
            ],
            rows=[row(n, c) for n in POLICY_SCHEMES for c in _CONDITIONS],
        )

        adaptive = [reports[(n, "adaptive")] for n in POLICY_SCHEMES]
        quiet = [reports[(n, "adaptive-quiet")] for n in POLICY_SCHEMES]
        periodic = [reports[(n, "periodic")] for n in POLICY_SCHEMES]
        shapes = {
            # policies never change what is computed, only when it is saved
            "all_results_exact": all(
                r.result["sum"] == expected for r in reports.values()
            ),
            # observed faults narrow the adaptive interval ...
            "adaptive_narrows_under_faults": all(
                r.counters.get("policy.narrowings", 0) > 0 for r in adaptive
            ),
            # ... and a quiet machine never triggers a narrowing
            "quiet_never_narrows": all(
                r.counters.get("policy.narrowings", 0) == 0 for r in quiet
            ),
            # the adaptive runs checkpoint more often than their quiet twins
            "adaptation_changes_frequency": all(
                mean_interval(a) < mean_interval(q)
                for a, q in zip(adaptive, quiet)
            ),
            # the fixed policy never adapts, faults or not
            "periodic_is_inert": all(
                r.counters.get("policy.narrowings", 0) == 0
                and r.counters.get("policy.widenings", 0) == 0
                for r in periodic
            ),
            # the faulted columns actually crashed and recovered
            "faulted_runs_recovered": all(
                len(r.recoveries) >= 1 for r in adaptive + periodic
            ),
        }
        return TableResult(
            name="policies",
            views=[view],
            shapes=shapes,
            summary_lines=[
                f"adaptive mean interval: "
                f"{mean_interval(adaptive[0]) / T:.3f}T faulted vs "
                f"{mean_interval(quiet[0]) / T:.3f}T quiet "
                f"({POLICY_SCHEMES[0]})",
            ],
            data={
                "normal_time": T,
                "expected": expected,
                "reports": {f"{n}/{c}": r for (n, c), r in reports.items()},
            },
        )

    return ExperimentSpec(
        name="policies",
        title="P1 — checkpoint policies (fixed vs fault-adaptive)",
        baselines=(baseline,),
        plan=plan,
        reduce=reduce,
    )


def run_policies(
    seed: int = 0,
    machine: Optional[MachineParams] = None,
    scale: float = 1.0,
    executor: Optional[GridExecutor] = None,
) -> TableResult:
    return run_spec(
        policies_spec(seed=seed, machine=machine, scale=scale),
        executor=executor,
    )
