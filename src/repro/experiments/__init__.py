"""Experiment harness: one module per table/figure plus ablations & sweeps.

See DESIGN.md §4 for the per-experiment index. Each experiment is a
declarative :class:`~repro.experiments.grid.ExperimentSpec` (``*_spec``
factories) executed by the :class:`~repro.experiments.executor.GridExecutor`
(deduplication, parallel fan-out, on-disk result cache); each ``run_*``
convenience wrapper runs one spec and returns a
:class:`~repro.analysis.result.TableResult` with ``render()`` (the
table(s) as text) and ``shape_holds()`` (the paper's qualitative claims
as booleans).
"""

from .ablations import run_staggering_ablation, run_sync_cost, staggering_spec, sync_cost_spec
from .capture import capture_spec, run_capture_ablation
from .domino import domino_spec, run_domino, run_storage_overhead, storage_overhead_spec
from .executor import (
    CellTimeout,
    ExecutorStats,
    GridExecutor,
    RunJournal,
    run_cell,
    run_spec,
)
from .faults import (
    failure_rates_spec,
    interval_sweep_spec,
    run_failure_rates,
    run_interval_sweep,
    young_interval,
)
from .grid import (
    Cell,
    ExperimentSpec,
    GridResults,
    SchemeSpec,
    WorkloadSpec,
    cell_key,
    interval_times,
)
from .harness import (
    SCHEMES_TABLE1,
    SCHEMES_TABLE23,
    WorkloadResult,
    make_scheme,
    run_workload,
    scheme_spec,
)
from .policies import POLICY_SCHEMES, policies_spec, run_policies
from .resilience import RESILIENCE_SCHEMES, resilience_spec, run_resilience
from .scale import SCALE_NS, run_scale, scale_machine, scale_spec, scale_workload
from .sweeps import (
    bandwidth_sweep_spec,
    run_bandwidth_sweep,
    run_writer_sweep,
    writer_sweep_spec,
)
from .table1 import run_table1, table1_spec
from .table23 import run_table23, table23_spec
from .twolevel import run_two_level, two_level_spec
from .workloads import (
    Workload,
    quick_workloads,
    scaled_iters,
    table1_workloads,
    table23_workloads,
)

__all__ = [
    # grid + execution core
    "Cell",
    "ExperimentSpec",
    "GridResults",
    "SchemeSpec",
    "WorkloadSpec",
    "cell_key",
    "interval_times",
    "GridExecutor",
    "ExecutorStats",
    "RunJournal",
    "CellTimeout",
    "run_cell",
    "run_spec",
    # workload catalogues
    "Workload",
    "table1_workloads",
    "table23_workloads",
    "quick_workloads",
    "scaled_iters",
    # shared harness
    "make_scheme",
    "scheme_spec",
    "run_workload",
    "WorkloadResult",
    "SCHEMES_TABLE1",
    "SCHEMES_TABLE23",
    "RESILIENCE_SCHEMES",
    # experiments: specs + convenience wrappers
    "table1_spec",
    "run_table1",
    "table23_spec",
    "run_table23",
    "staggering_spec",
    "run_staggering_ablation",
    "sync_cost_spec",
    "run_sync_cost",
    "writer_sweep_spec",
    "run_writer_sweep",
    "bandwidth_sweep_spec",
    "run_bandwidth_sweep",
    "domino_spec",
    "run_domino",
    "storage_overhead_spec",
    "run_storage_overhead",
    "capture_spec",
    "run_capture_ablation",
    "failure_rates_spec",
    "run_failure_rates",
    "interval_sweep_spec",
    "run_interval_sweep",
    "young_interval",
    "two_level_spec",
    "run_two_level",
    "resilience_spec",
    "run_resilience",
    "POLICY_SCHEMES",
    "policies_spec",
    "run_policies",
    "SCALE_NS",
    "scale_workload",
    "scale_machine",
    "scale_spec",
    "run_scale",
]
