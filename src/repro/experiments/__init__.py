"""Experiment harness: one module per table/figure plus ablations & sweeps.

See DESIGN.md §4 for the per-experiment index. Each ``run_*`` function
returns a result object with ``render()`` (the table as text) and
``shape_holds()`` (the paper's qualitative claims as booleans).
"""

from .ablations import run_staggering_ablation, run_sync_cost
from .capture import run_capture_ablation
from .domino import run_domino, run_storage_overhead
from .faults import run_failure_rates, run_interval_sweep, young_interval
from .harness import (
    SCHEMES_TABLE1,
    SCHEMES_TABLE23,
    WorkloadResult,
    make_scheme,
    run_workload,
)
from .resilience import ResilienceResult, run_resilience
from .sweeps import run_bandwidth_sweep, run_writer_sweep
from .table1 import Table1Result, run_table1
from .twolevel import run_two_level
from .table23 import Table23Result, run_table23
from .workloads import (
    Workload,
    quick_workloads,
    table1_workloads,
    table23_workloads,
)

__all__ = [
    "Workload",
    "table1_workloads",
    "table23_workloads",
    "quick_workloads",
    "make_scheme",
    "run_workload",
    "WorkloadResult",
    "SCHEMES_TABLE1",
    "SCHEMES_TABLE23",
    "run_table1",
    "Table1Result",
    "run_table23",
    "Table23Result",
    "run_staggering_ablation",
    "run_sync_cost",
    "run_writer_sweep",
    "run_bandwidth_sweep",
    "run_domino",
    "run_storage_overhead",
    "run_capture_ablation",
    "run_failure_rates",
    "run_interval_sweep",
    "young_interval",
    "run_two_level",
    "run_resilience",
    "ResilienceResult",
]
