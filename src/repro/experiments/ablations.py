"""Ablation experiments for the design choices the paper calls out.

A1 — *staggering only pays with main-memory checkpointing*: compare the
four coordinated variants NB / NBS / NBM / NBMS on the same workloads.
NBS (staggered blocking writes) serialises the blocked windows and should
be the worst column; NBMS the best — the paper's prose claim.

A2 — *synchronisation is negligible; saving dominates*: decompose the
coordinated overhead into protocol traffic (markers/acks/commits, bytes
and wire time) versus checkpoint-saving time, per workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis import fmt_seconds, render_table
from ..chklib import CheckpointRuntime
from ..machine import MachineParams
from .harness import make_scheme, run_workload
from .workloads import Workload, table23_workloads

__all__ = [
    "StaggeringAblation",
    "run_staggering_ablation",
    "SyncCostRow",
    "run_sync_cost",
]

_VARIANTS = ("coord_nb", "coord_nbs", "coord_nbm", "coord_nbms")


@dataclass
class StaggeringAblation:
    """Per-checkpoint overhead of the four coordinated variants."""

    results: List

    def render(self) -> str:
        headers = ["application"] + [v.upper() for v in _VARIANTS]
        body = [
            [res.label] + [res.per_checkpoint(v) for v in _VARIANTS]
            for res in self.results
        ]
        return render_table(
            headers,
            body,
            title="A1: staggering ablation, overhead per checkpoint (s)",
            fmt=fmt_seconds,
        )

    def shape_holds(self) -> Dict[str, bool]:
        """Staggering alone must not help; with memory ckpt it must."""
        rows = [
            {v: res.per_checkpoint(v) for v in _VARIANTS}
            for res in self.results
        ]
        nbs_never_best = all(
            row["coord_nbs"] >= min(row.values()) for row in rows
        )
        nbms_wins = sum(
            1 for row in rows if row["coord_nbms"] == min(row.values())
        )
        stagger_helps_memory = sum(
            1 for row in rows if row["coord_nbms"] <= row["coord_nbm"]
        )
        return {
            "nbs_never_best": nbs_never_best,
            "nbms_best_majority": nbms_wins > len(rows) / 2,
            "stagger_helps_with_memory": stagger_helps_memory > len(rows) / 2,
        }


def run_staggering_ablation(
    workloads: Optional[List[Workload]] = None,
    seed: int = 0,
    machine: Optional[MachineParams] = None,
    rounds: int = 2,
) -> StaggeringAblation:
    workloads = workloads if workloads is not None else table23_workloads()[:4]
    results = [
        run_workload(w, _VARIANTS, rounds=rounds, seed=seed, machine=machine)
        for w in workloads
    ]
    return StaggeringAblation(results=results)


@dataclass
class SyncCostRow:
    """Protocol-vs-saving decomposition for one workload under Coord_NB."""

    label: str
    overhead_s: float
    blocked_time_s: float  #: app time lost to state saving (all ranks)
    control_messages: int
    control_bytes: int
    control_wire_s: float  #: total wire time of all protocol messages

    @property
    def sync_fraction(self) -> float:
        """Share of the overhead attributable to protocol traffic."""
        if self.overhead_s <= 0:
            return 0.0
        return min(1.0, self.control_wire_s / self.overhead_s)


@dataclass
class SyncCostResult:
    rows: List[SyncCostRow]

    def render(self) -> str:
        headers = [
            "application",
            "overhead(s)",
            "saving-blocked(s)",
            "ctl msgs",
            "ctl bytes",
            "ctl wire(s)",
            "sync share",
        ]
        body = [
            [
                r.label,
                fmt_seconds(r.overhead_s),
                fmt_seconds(r.blocked_time_s),
                r.control_messages,
                r.control_bytes,
                f"{r.control_wire_s:.4f}",
                f"{100 * r.sync_fraction:.2f} %",
            ]
            for r in self.rows
        ]
        return render_table(
            headers, body, title="A2: synchronisation cost vs saving cost"
        )

    def shape_holds(self) -> Dict[str, bool]:
        return {
            # the paper: "the cost of synchronisation is actually
            # insignificant" — protocol wire time is a tiny share.
            "sync_cost_negligible": all(r.sync_fraction < 0.05 for r in self.rows),
            "saving_dominates": all(
                r.blocked_time_s > 10 * r.control_wire_s for r in self.rows
            ),
        }


def run_sync_cost(
    workloads: Optional[List[Workload]] = None,
    seed: int = 0,
    machine: Optional[MachineParams] = None,
    rounds: int = 3,
) -> SyncCostResult:
    workloads = workloads if workloads is not None else table23_workloads()[:4]
    machine = machine or MachineParams.xplorer8()
    rows = []
    for workload in workloads:
        res = run_workload(
            workload, ("coord_nb",), rounds=rounds, seed=seed, machine=machine
        )
        report = res.reports["coord_nb"]
        link = machine.link
        wire = sum(
            link.latency + size / link.bandwidth
            for size in [report.control_bytes / max(1, report.control_messages)]
        ) * report.control_messages
        rows.append(
            SyncCostRow(
                label=res.label,
                overhead_s=res.overhead_seconds("coord_nb"),
                blocked_time_s=report.blocked_time,
                control_messages=report.control_messages,
                control_bytes=report.control_bytes,
                control_wire_s=wire,
            )
        )
    return SyncCostResult(rows=rows)
