"""Ablation experiments for the design choices the paper calls out.

A1 — *staggering only pays with main-memory checkpointing*: compare the
four coordinated variants NB / NBS / NBM / NBMS on the same workloads.
NBS (staggered blocking writes) serialises the blocked windows and should
be the worst column; NBMS the best — the paper's prose claim.

A2 — *synchronisation is negligible; saving dominates*: decompose the
coordinated overhead into protocol traffic (markers/acks/commits, bytes
and wire time) versus checkpoint-saving time, per workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis import TableResult, TableView, fmt_seconds
from ..machine import MachineParams
from .executor import GridExecutor, run_spec
from .grid import Cell, ExperimentSpec, GridResults, WorkloadSpec, interval_times
from .harness import WorkloadResult, scheme_spec
from .workloads import table23_workloads

__all__ = [
    "staggering_spec",
    "run_staggering_ablation",
    "SyncCostRow",
    "sync_cost_spec",
    "run_sync_cost",
]

_VARIANTS = ("coord_nb", "coord_nbs", "coord_nbm", "coord_nbms")


def staggering_spec(
    workloads: Optional[List[WorkloadSpec]] = None,
    seed: int = 0,
    machine: Optional[MachineParams] = None,
    rounds: int = 2,
    scale: float = 1.0,
) -> ExperimentSpec:
    """A1: the four coordinated variants on the same workloads."""
    workloads = (
        workloads if workloads is not None else table23_workloads(scale)[:4]
    )
    machine = machine or MachineParams.xplorer8()
    baselines = tuple(
        Cell(workload=w, machine=machine, seed=seed) for w in workloads
    )

    def cells_for(results: GridResults):
        grid = []
        for w, base in zip(workloads, baselines):
            interval, times = interval_times(results[base].sim_time, rounds)
            row = {
                v: Cell(
                    workload=w,
                    scheme=scheme_spec(v, times, interval),
                    machine=machine,
                    seed=seed,
                )
                for v in _VARIANTS
            }
            grid.append((w, base, interval, row))
        return grid

    def plan(results: GridResults):
        return [c for _, _, _, row in cells_for(results) for c in row.values()]

    def reduce(results: GridResults) -> TableResult:
        wrs: List[WorkloadResult] = []
        for w, base, interval, row in cells_for(results):
            wrs.append(
                WorkloadResult(
                    label=w.label,
                    normal=results[base],
                    interval=interval,
                    rounds=rounds,
                    reports={v: results[c] for v, c in row.items()},
                )
            )
        rows = [{v: wr.per_checkpoint(v) for v in _VARIANTS} for wr in wrs]
        view = TableView(
            name="ablation-staggering",
            title="A1: staggering ablation, overhead per checkpoint (s)",
            headers=["application"] + [v.upper() for v in _VARIANTS],
            rows=[
                [wr.label] + [wr.per_checkpoint(v) for v in _VARIANTS]
                for wr in wrs
            ],
            fmt=fmt_seconds,
        )
        nbs_never_best = all(
            row["coord_nbs"] >= min(row.values()) for row in rows
        )
        nbms_wins = sum(
            1 for row in rows if row["coord_nbms"] == min(row.values())
        )
        stagger_helps_memory = sum(
            1 for row in rows if row["coord_nbms"] <= row["coord_nbm"]
        )
        return TableResult(
            name="ablation-staggering",
            views=[view],
            shapes={
                # staggering alone must not help; with memory ckpt it must.
                "nbs_never_best": nbs_never_best,
                "nbms_best_majority": nbms_wins > len(rows) / 2,
                "stagger_helps_with_memory": stagger_helps_memory
                > len(rows) / 2,
            },
            summary_lines=[
                f"NBMS best in {nbms_wins}/{len(rows)} workloads; "
                f"NBS never best: {nbs_never_best}",
            ],
            data={"results": wrs, "rows": rows, "variants": _VARIANTS},
        )

    return ExperimentSpec(
        name="ablation-staggering",
        title="A1 — staggering ablation",
        baselines=baselines,
        plan=plan,
        reduce=reduce,
    )


def run_staggering_ablation(
    workloads: Optional[List[WorkloadSpec]] = None,
    seed: int = 0,
    machine: Optional[MachineParams] = None,
    rounds: int = 2,
    scale: float = 1.0,
    executor: Optional[GridExecutor] = None,
) -> TableResult:
    return run_spec(
        staggering_spec(
            workloads=workloads,
            seed=seed,
            machine=machine,
            rounds=rounds,
            scale=scale,
        ),
        executor=executor,
    )


@dataclass
class SyncCostRow:
    """Protocol-vs-saving decomposition for one workload under Coord_NB."""

    label: str
    overhead_s: float
    blocked_time_s: float  #: app time lost to state saving (all ranks)
    control_messages: int
    control_bytes: int
    control_wire_s: float  #: total wire time of all protocol messages

    @property
    def sync_fraction(self) -> float:
        """Share of the overhead attributable to protocol traffic."""
        if self.overhead_s <= 0:
            return 0.0
        return min(1.0, self.control_wire_s / self.overhead_s)


def sync_cost_spec(
    workloads: Optional[List[WorkloadSpec]] = None,
    seed: int = 0,
    machine: Optional[MachineParams] = None,
    rounds: int = 3,
    scale: float = 1.0,
) -> ExperimentSpec:
    """A2: the Coord_NB overhead decomposed into sync vs saving cost."""
    workloads = (
        workloads if workloads is not None else table23_workloads(scale)[:4]
    )
    machine = machine or MachineParams.xplorer8()
    baselines = tuple(
        Cell(workload=w, machine=machine, seed=seed) for w in workloads
    )

    def cells_for(results: GridResults):
        grid = []
        for w, base in zip(workloads, baselines):
            interval, times = interval_times(results[base].sim_time, rounds)
            cell = Cell(
                workload=w,
                scheme=scheme_spec("coord_nb", times, interval),
                machine=machine,
                seed=seed,
            )
            grid.append((w, base, cell))
        return grid

    def plan(results: GridResults):
        return [cell for _, _, cell in cells_for(results)]

    def reduce(results: GridResults) -> TableResult:
        link = machine.link
        rows: List[SyncCostRow] = []
        for w, base, cell in cells_for(results):
            report = results[cell]
            per_msg = report.control_bytes / max(1, report.control_messages)
            wire = (
                link.latency + per_msg / link.bandwidth
            ) * report.control_messages
            rows.append(
                SyncCostRow(
                    label=w.label,
                    overhead_s=report.sim_time - results[base].sim_time,
                    blocked_time_s=report.blocked_time,
                    control_messages=report.control_messages,
                    control_bytes=report.control_bytes,
                    control_wire_s=wire,
                )
            )
        view = TableView(
            name="ablation-sync",
            title="A2: synchronisation cost vs saving cost",
            headers=[
                "application",
                "overhead(s)",
                "saving-blocked(s)",
                "ctl msgs",
                "ctl bytes",
                "ctl wire(s)",
                "sync share",
            ],
            rows=[
                [
                    r.label,
                    fmt_seconds(r.overhead_s),
                    fmt_seconds(r.blocked_time_s),
                    r.control_messages,
                    r.control_bytes,
                    f"{r.control_wire_s:.4f}",
                    f"{100 * r.sync_fraction:.2f} %",
                ]
                for r in rows
            ],
        )
        return TableResult(
            name="ablation-sync",
            views=[view],
            shapes={
                # the paper: "the cost of synchronisation is actually
                # insignificant" — protocol wire time is a tiny share.
                "sync_cost_negligible": all(
                    r.sync_fraction < 0.05 for r in rows
                ),
                "saving_dominates": all(
                    r.blocked_time_s > 10 * r.control_wire_s for r in rows
                ),
            },
            summary_lines=[
                "max sync share: "
                f"{100 * max(r.sync_fraction for r in rows):.2f} %",
            ],
            data={"rows": rows},
        )

    return ExperimentSpec(
        name="ablation-sync",
        title="A2 — synchronisation cost",
        baselines=baselines,
        plan=plan,
        reduce=reduce,
    )


def run_sync_cost(
    workloads: Optional[List[WorkloadSpec]] = None,
    seed: int = 0,
    machine: Optional[MachineParams] = None,
    rounds: int = 3,
    scale: float = 1.0,
    executor: Optional[GridExecutor] = None,
) -> TableResult:
    return run_spec(
        sync_cost_spec(
            workloads=workloads,
            seed=seed,
            machine=machine,
            rounds=rounds,
            scale=scale,
        ),
        executor=executor,
    )
