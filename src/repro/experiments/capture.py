"""E1 extension: capture-mode and incremental-checkpointing ablation.

The paper's related work ([13], Elnozahy et al.) reduces checkpoint
overhead with *incremental* and *copy-on-write* checkpointing. We add both
to the reproduced library and measure them against the paper's best scheme
(``Coord_NBMS``):

* capture axis — what the application blocks on at the cut: full blocking
  write / main-memory copy / copy-on-write page protection;
* volume axis — full images vs dirty-page increments (measured from the
  real serialized states, not modelled).

Expected shape: incremental wins big where the state is mostly read-only
(ISING's bond couplings, TSP's distance map) and much less on
every-page-dirty stencils (SOR); CoW trades the copy block for a small
interference window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis import fmt_seconds, render_table
from ..machine import MachineParams
from .harness import run_workload
from .workloads import Workload, table23_workloads

__all__ = ["CaptureAblation", "run_capture_ablation"]

_SCHEMES = ("coord_nbms", "coord_nbcs", "coord_nbms_inc", "coord_nbcs_inc")
_LABELS = {
    "coord_nbms": "memcopy/full",
    "coord_nbcs": "cow/full",
    "coord_nbms_inc": "memcopy/incr",
    "coord_nbcs_inc": "cow/incr",
}


@dataclass
class CaptureAblation:
    results: List

    def render(self) -> str:
        headers = ["application"] + [_LABELS[s] for s in _SCHEMES] + [
            "bytes full (MB)",
            "bytes incr (MB)",
        ]
        body = []
        for res in self.results:
            row = [res.label] + [res.per_checkpoint(s) for s in _SCHEMES]
            row.append(
                f"{res.reports['coord_nbms'].storage_bytes_written / 1e6:.2f}"
            )
            row.append(
                f"{res.reports['coord_nbms_inc'].storage_bytes_written / 1e6:.2f}"
            )
            body.append(row)
        return render_table(
            headers,
            body,
            title="E1: capture mode x incremental (overhead per ckpt, s)",
            fmt=fmt_seconds,
        )

    def shape_holds(self) -> Dict[str, bool]:
        rows = {
            res.label: {s: res.per_checkpoint(s) for s in _SCHEMES}
            for res in self.results
        }
        bytes_ratio = {
            res.label: (
                res.reports["coord_nbms_inc"].storage_bytes_written
                / max(1.0, res.reports["coord_nbms"].storage_bytes_written)
            )
            for res in self.results
        }
        ising = [k for k in rows if k.startswith("ising")]
        sor = [k for k in rows if k.startswith("sor")]
        return {
            # incremental never increases the shipped volume
            "incremental_writes_less": all(v <= 1.01 for v in bytes_ratio.values()),
            # and shines on mostly-read-only state (ISING couplings)
            "incremental_big_win_on_ising": all(
                bytes_ratio[k] < 0.5 for k in ising
            ),
            # SOR dirties every page: the saving there is just the pad
            "incremental_small_win_on_sor": all(
                bytes_ratio[k] > bytes_ratio[i] for k in sor for i in ising
            ),
            # incremental overhead never worse than full for the same capture
            "incremental_overhead_not_worse": all(
                r["coord_nbms_inc"] <= r["coord_nbms"] * 1.05 for r in rows.values()
            ),
        }


def run_capture_ablation(
    workloads: Optional[List[Workload]] = None,
    seed: int = 0,
    machine: Optional[MachineParams] = None,
    rounds: int = 3,
) -> CaptureAblation:
    if workloads is None:
        wanted = ("ising-288", "sor-320", "nqueens-12")
        workloads = [w for w in table23_workloads() if w.label in wanted]
    results = [
        run_workload(w, _SCHEMES, rounds=rounds, seed=seed, machine=machine)
        for w in workloads
    ]
    return CaptureAblation(results=results)
