"""E1 extension: capture-mode and incremental-checkpointing ablation.

The paper's related work ([13], Elnozahy et al.) reduces checkpoint
overhead with *incremental* and *copy-on-write* checkpointing. We add both
to the reproduced library and measure them against the paper's best scheme
(``Coord_NBMS``):

* capture axis — what the application blocks on at the cut: full blocking
  write / main-memory copy / copy-on-write page protection;
* volume axis — full images vs dirty-page increments (measured from the
  real serialized states, not modelled).

Expected shape: incremental wins big where the state is mostly read-only
(ISING's bond couplings, TSP's distance map) and much less on
every-page-dirty stencils (SOR); CoW trades the copy block for a small
interference window.
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis import TableResult, TableView, fmt_seconds
from ..machine import MachineParams
from .executor import GridExecutor, run_spec
from .grid import Cell, ExperimentSpec, GridResults, WorkloadSpec, interval_times
from .harness import WorkloadResult, scheme_spec
from .workloads import table23_workloads

__all__ = ["capture_spec", "run_capture_ablation"]

_SCHEMES = ("coord_nbms", "coord_nbcs", "coord_nbms_inc", "coord_nbcs_inc")
_LABELS = {
    "coord_nbms": "memcopy/full",
    "coord_nbcs": "cow/full",
    "coord_nbms_inc": "memcopy/incr",
    "coord_nbcs_inc": "cow/incr",
}


def capture_spec(
    workloads: Optional[List[WorkloadSpec]] = None,
    seed: int = 0,
    machine: Optional[MachineParams] = None,
    rounds: int = 3,
    scale: float = 1.0,
) -> ExperimentSpec:
    """E1: capture mode x incremental, against the paper's best scheme."""
    if workloads is None:
        wanted = ("ising-288", "sor-320", "nqueens-12")
        workloads = [w for w in table23_workloads(scale) if w.label in wanted]
    machine = machine or MachineParams.xplorer8()
    baselines = tuple(
        Cell(workload=w, machine=machine, seed=seed) for w in workloads
    )

    def cells_for(results: GridResults):
        grid = []
        for w, base in zip(workloads, baselines):
            interval, times = interval_times(results[base].sim_time, rounds)
            row = {
                s: Cell(
                    workload=w,
                    scheme=scheme_spec(s, times, interval),
                    machine=machine,
                    seed=seed,
                )
                for s in _SCHEMES
            }
            grid.append((w, base, interval, row))
        return grid

    def plan(results: GridResults):
        return [c for _, _, _, row in cells_for(results) for c in row.values()]

    def reduce(results: GridResults) -> TableResult:
        wrs: List[WorkloadResult] = []
        for w, base, interval, row in cells_for(results):
            wrs.append(
                WorkloadResult(
                    label=w.label,
                    normal=results[base],
                    interval=interval,
                    rounds=rounds,
                    reports={s: results[c] for s, c in row.items()},
                )
            )
        body = []
        for wr in wrs:
            row = [wr.label] + [wr.per_checkpoint(s) for s in _SCHEMES]
            row.append(
                f"{wr.reports['coord_nbms'].storage_bytes_written / 1e6:.2f}"
            )
            row.append(
                f"{wr.reports['coord_nbms_inc'].storage_bytes_written / 1e6:.2f}"
            )
            body.append(row)
        view = TableView(
            name="capture",
            title="E1: capture mode x incremental (overhead per ckpt, s)",
            headers=["application"]
            + [_LABELS[s] for s in _SCHEMES]
            + ["bytes full (MB)", "bytes incr (MB)"],
            rows=body,
            fmt=fmt_seconds,
        )
        rows = {
            wr.label: {s: wr.per_checkpoint(s) for s in _SCHEMES} for wr in wrs
        }
        bytes_ratio = {
            wr.label: (
                wr.reports["coord_nbms_inc"].storage_bytes_written
                / max(1.0, wr.reports["coord_nbms"].storage_bytes_written)
            )
            for wr in wrs
        }
        ising = [k for k in rows if k.startswith("ising")]
        sor = [k for k in rows if k.startswith("sor")]
        return TableResult(
            name="capture",
            views=[view],
            shapes={
                # incremental never increases the shipped volume
                "incremental_writes_less": all(
                    v <= 1.01 for v in bytes_ratio.values()
                ),
                # and shines on mostly-read-only state (ISING couplings)
                "incremental_big_win_on_ising": all(
                    bytes_ratio[k] < 0.5 for k in ising
                ),
                # SOR dirties every page: the saving there is just the pad
                "incremental_small_win_on_sor": all(
                    bytes_ratio[k] > bytes_ratio[i] for k in sor for i in ising
                ),
                # incremental overhead never worse than full for the same
                # capture mode
                "incremental_overhead_not_worse": all(
                    r["coord_nbms_inc"] <= r["coord_nbms"] * 1.05
                    for r in rows.values()
                ),
            },
            summary_lines=[
                "incremental/full byte ratio: "
                + ", ".join(
                    f"{k}={v:.2f}" for k, v in sorted(bytes_ratio.items())
                ),
            ],
            data={"results": wrs, "rows": rows, "bytes_ratio": bytes_ratio},
        )

    return ExperimentSpec(
        name="capture",
        title="E1 — capture mode x incremental ablation",
        baselines=baselines,
        plan=plan,
        reduce=reduce,
    )


def run_capture_ablation(
    workloads: Optional[List[WorkloadSpec]] = None,
    seed: int = 0,
    machine: Optional[MachineParams] = None,
    rounds: int = 3,
    scale: float = 1.0,
    executor: Optional[GridExecutor] = None,
) -> TableResult:
    return run_spec(
        capture_spec(
            workloads=workloads,
            seed=seed,
            machine=machine,
            rounds=rounds,
            scale=scale,
        ),
        executor=executor,
    )
