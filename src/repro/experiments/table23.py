"""Tables 2 and 3: execution times and overhead percentages.

One set of runs feeds both tables (as in the paper): every application is
run uncheckpointed (NORMAL) and under ``Coord_NB``, ``Indep``,
``Coord_NBMS`` and ``Indep_M``, with exactly three checkpoints.

* **Table 2** reports the execution times (seconds).
* **Table 3** reports the checkpoint interval and the overhead as a
  percentage of NORMAL, and carries the paper's headline: staggering +
  main-memory checkpointing reduces the Coord_NB overhead by a factor of
  4-17, and ``Coord_NBMS`` beats ``Indep_M`` in the tightly-coupled apps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis import (
    SchemeComparison,
    fmt_percent,
    fmt_seconds,
    reduction_factor,
    render_table,
)
from ..machine import MachineParams
from .harness import SCHEMES_TABLE23, WorkloadResult, run_workload
from .workloads import Workload, table23_workloads

__all__ = ["Table23Result", "run_table23"]


@dataclass
class Table23Result:
    """Measurements behind Tables 2 and 3."""

    results: List[WorkloadResult]
    schemes: tuple = SCHEMES_TABLE23

    # -- Table 2: execution times -------------------------------------------

    def render_table2(self) -> str:
        headers = ["application", "NORMAL"] + [s.upper() for s in self.schemes]
        body = [
            [res.label, res.normal_time]
            + [res.reports[s].sim_time for s in self.schemes]
            for res in self.results
        ]
        return render_table(
            headers,
            body,
            title="Table 2: execution times (seconds, 3 checkpoints)",
            fmt=fmt_seconds,
        )

    # -- Table 3: overhead percentages ------------------------------------------

    def render_table3(self) -> str:
        headers = ["application", "interval(s)"] + [
            s.upper() for s in self.schemes
        ]
        body = []
        for res in self.results:
            row = [res.label, f"{res.interval:.0f}"]
            row += [fmt_percent(res.overhead_percent(s)) for s in self.schemes]
            body.append(row)
        return render_table(
            headers, body, title="Table 3: performance overhead (percent)"
        )

    def overhead_rows(self) -> List[Dict[str, float]]:
        return [
            {s: res.overhead_percent(s) for s in self.schemes}
            for res in self.results
        ]

    # -- headline shapes -----------------------------------------------------------

    def nb_to_nbms_reduction(self) -> Dict[str, float]:
        """Paper: 'a reduction factor of 4 up to 17 in the overhead'."""
        return reduction_factor(self.overhead_rows(), "coord_nb", "coord_nbms")

    def coordinated_beats_independent(self) -> Dict[str, SchemeComparison]:
        return {
            "nb_vs_indep": SchemeComparison.over(
                self.overhead_rows(), "coord_nb", "indep"
            ),
            "nbms_vs_indep_m": SchemeComparison.over(
                self.overhead_rows(), "coord_nbms", "indep_m"
            ),
        }

    def summary(self) -> str:
        red = self.nb_to_nbms_reduction()
        cmps = self.coordinated_beats_independent()
        lines = [
            f"NB -> NBMS overhead reduction factor: "
            f"min {red['min']:.1f}x, max {red['max']:.1f}x, mean {red['mean']:.1f}x",
            f"Coord_NB   vs Indep   : {cmps['nb_vs_indep']}",
            f"Coord_NBMS vs Indep_M : {cmps['nbms_vs_indep_m']}",
        ]
        return "\n".join(lines)

    def shape_holds(self) -> Dict[str, bool]:
        red = self.nb_to_nbms_reduction()
        cmps = self.coordinated_beats_independent()
        tight = [
            row
            for res, row in zip(self.results, self.overhead_rows())
            if not res.label.startswith(("tsp", "nqueens"))
        ]
        loose = [
            row
            for res, row in zip(self.results, self.overhead_rows())
            if res.label.startswith(("tsp", "nqueens"))
        ]
        return {
            # staggering + memory gives a large reduction over plain NB
            "nbms_reduction_large": red["min"] >= 2.0 and red["max"] >= 6.0,
            # coordinated wins overall in both pairings
            "nb_beats_indep_overall": (
                cmps["nb_vs_indep"].a_wins >= cmps["nb_vs_indep"].b_wins
            ),
            "nbms_beats_indep_m_overall": (
                cmps["nbms_vs_indep_m"].a_wins > cmps["nbms_vs_indep_m"].b_wins
            ),
            # loosely-coupled apps have tiny overheads under the best schemes
            "loose_apps_sub_percent": all(
                row["coord_nbms"] < 1.0 for row in loose
            ),
            # tightly-coupled apps dominate the overhead ranking under NB
            "tight_apps_heavier": (
                max(r["coord_nb"] for r in tight)
                > max((r["coord_nb"] for r in loose), default=0.0)
            ),
        }


def run_table23(
    workloads: Optional[List[Workload]] = None,
    seed: int = 0,
    machine: Optional[MachineParams] = None,
    rounds: int = 3,
    verbose: bool = False,
) -> Table23Result:
    """Execute every Table 2/3 cell (45 runs at full scale)."""
    workloads = workloads if workloads is not None else table23_workloads()
    results = []
    for workload in workloads:
        res = run_workload(
            workload, SCHEMES_TABLE23, rounds=rounds, seed=seed, machine=machine
        )
        if verbose:  # pragma: no cover - console progress
            cells = ", ".join(
                f"{s}={res.overhead_percent(s):.2f}%" for s in SCHEMES_TABLE23
            )
            print(f"{res.label:>12}  T={res.normal_time:7.1f}s  {cells}")
        results.append(res)
    return Table23Result(results=results)
