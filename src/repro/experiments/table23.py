"""Tables 2 and 3: execution times and overhead percentages.

One set of runs feeds both tables (as in the paper): every application is
run uncheckpointed (NORMAL) and under ``Coord_NB``, ``Indep``,
``Coord_NBMS`` and ``Indep_M``, with exactly three checkpoints.  The
single grid result carries both tables as views (``table2``/``table3``),
so the runner needs no adapter classes.

* **Table 2** reports the execution times (seconds).
* **Table 3** reports the checkpoint interval and the overhead as a
  percentage of NORMAL, and carries the paper's headline: staggering +
  main-memory checkpointing reduces the Coord_NB overhead by a factor of
  4-17, and ``Coord_NBMS`` beats ``Indep_M`` in the tightly-coupled apps.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..analysis import (
    SchemeComparison,
    TableResult,
    TableView,
    fmt_percent,
    fmt_seconds,
    reduction_factor,
)
from ..machine import MachineParams
from .executor import GridExecutor, run_spec
from .grid import Cell, ExperimentSpec, GridResults, WorkloadSpec, interval_times
from .harness import SCHEMES_TABLE23, WorkloadResult, scheme_spec
from .workloads import table23_workloads

__all__ = ["table23_spec", "run_table23"]


def table23_spec(
    workloads: Optional[List[WorkloadSpec]] = None,
    seed: int = 0,
    machine: Optional[MachineParams] = None,
    rounds: int = 3,
    scale: float = 1.0,
) -> ExperimentSpec:
    """The shared Table 2/3 grid (45 runs at full scale)."""
    workloads = workloads if workloads is not None else table23_workloads(scale)
    machine = machine or MachineParams.xplorer8()
    baselines = tuple(
        Cell(workload=w, machine=machine, seed=seed) for w in workloads
    )

    def cells_for(results: GridResults):
        grid = []
        for w, base in zip(workloads, baselines):
            interval, times = interval_times(results[base].sim_time, rounds)
            row = {
                s: Cell(
                    workload=w,
                    scheme=scheme_spec(s, times, interval),
                    machine=machine,
                    seed=seed,
                )
                for s in SCHEMES_TABLE23
            }
            grid.append((w, base, interval, row))
        return grid

    def plan(results: GridResults):
        return [c for _, _, _, row in cells_for(results) for c in row.values()]

    def reduce(results: GridResults) -> TableResult:
        wrs: List[WorkloadResult] = []
        for w, base, interval, row in cells_for(results):
            wrs.append(
                WorkloadResult(
                    label=w.label,
                    normal=results[base],
                    interval=interval,
                    rounds=rounds,
                    reports={s: results[c] for s, c in row.items()},
                )
            )
        overhead_rows = [
            {s: wr.overhead_percent(s) for s in SCHEMES_TABLE23} for wr in wrs
        ]
        table2 = TableView(
            name="table2",
            title="Table 2: execution times (seconds, 3 checkpoints)",
            headers=["application", "NORMAL"]
            + [s.upper() for s in SCHEMES_TABLE23],
            rows=[
                [wr.label, wr.normal_time]
                + [wr.reports[s].sim_time for s in SCHEMES_TABLE23]
                for wr in wrs
            ],
            fmt=fmt_seconds,
        )
        table3 = TableView(
            name="table3",
            title="Table 3: performance overhead (percent)",
            headers=["application", "interval(s)"]
            + [s.upper() for s in SCHEMES_TABLE23],
            rows=[
                [wr.label, f"{wr.interval:.0f}"]
                + [fmt_percent(wr.overhead_percent(s)) for s in SCHEMES_TABLE23]
                for wr in wrs
            ],
        )
        red = reduction_factor(overhead_rows, "coord_nb", "coord_nbms")
        cmps: Dict[str, SchemeComparison] = {
            "nb_vs_indep": SchemeComparison.over(
                overhead_rows, "coord_nb", "indep"
            ),
            "nbms_vs_indep_m": SchemeComparison.over(
                overhead_rows, "coord_nbms", "indep_m"
            ),
        }
        tight = [
            row
            for wr, row in zip(wrs, overhead_rows)
            if not wr.label.startswith(("tsp", "nqueens"))
        ]
        loose = [
            row
            for wr, row in zip(wrs, overhead_rows)
            if wr.label.startswith(("tsp", "nqueens"))
        ]
        return TableResult(
            name="table23",
            views=[table2, table3],
            shapes={
                # staggering + memory gives a large reduction over plain NB
                "nbms_reduction_large": red["min"] >= 2.0 and red["max"] >= 6.0,
                # coordinated wins overall in both pairings
                "nb_beats_indep_overall": (
                    cmps["nb_vs_indep"].a_wins >= cmps["nb_vs_indep"].b_wins
                ),
                "nbms_beats_indep_m_overall": (
                    cmps["nbms_vs_indep_m"].a_wins
                    > cmps["nbms_vs_indep_m"].b_wins
                ),
                # loosely-coupled apps have tiny overheads under the best
                # schemes
                "loose_apps_sub_percent": all(
                    row["coord_nbms"] < 1.0 for row in loose
                ),
                # tightly-coupled apps dominate the overhead ranking under NB
                "tight_apps_heavier": (
                    max(r["coord_nb"] for r in tight)
                    > max((r["coord_nb"] for r in loose), default=0.0)
                ),
            },
            summary_lines=[
                f"NB -> NBMS overhead reduction factor: "
                f"min {red['min']:.1f}x, max {red['max']:.1f}x, "
                f"mean {red['mean']:.1f}x",
                f"Coord_NB   vs Indep   : {cmps['nb_vs_indep']}",
                f"Coord_NBMS vs Indep_M : {cmps['nbms_vs_indep_m']}",
            ],
            data={
                "results": wrs,
                "overhead_rows": overhead_rows,
                "reduction": red,
                "comparisons": cmps,
                "schemes": SCHEMES_TABLE23,
            },
        )

    return ExperimentSpec(
        name="table23",
        title="Tables 2/3 — execution times and overhead percentages",
        baselines=baselines,
        plan=plan,
        reduce=reduce,
    )


def run_table23(
    workloads: Optional[List[WorkloadSpec]] = None,
    seed: int = 0,
    machine: Optional[MachineParams] = None,
    rounds: int = 3,
    scale: float = 1.0,
    executor: Optional[GridExecutor] = None,
) -> TableResult:
    """Execute every Table 2/3 cell and reduce to the two table views."""
    return run_spec(
        table23_spec(
            workloads=workloads,
            seed=seed,
            machine=machine,
            rounds=rounds,
            scale=scale,
        ),
        executor=executor,
    )
