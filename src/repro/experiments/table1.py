"""Table 1: overhead per checkpoint, 21 configurations x 5 schemes.

Regenerates the paper's central comparison. The quantities are per-
checkpoint overheads in (simulated) seconds:

    overhead_per_ckpt = (T_scheme - T_normal) / checkpoint_rounds

Headline shapes asserted by the benchmark:
  * ``Indep`` does *not* beat ``Coord_NB`` overall (paper: 15 of 21 worse);
  * ``Indep_M`` beats ``Coord_NBM`` in a clear majority (paper: 12 of 15);
  * ``Coord_NBMS`` is the best column nearly everywhere.
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis import SchemeComparison, TableResult, TableView, fmt_seconds
from ..machine import MachineParams
from .executor import GridExecutor, run_spec
from .grid import Cell, ExperimentSpec, GridResults, WorkloadSpec, interval_times
from .harness import SCHEMES_TABLE1, WorkloadResult, scheme_spec
from .workloads import table1_workloads

__all__ = ["table1_spec", "run_table1"]


def table1_spec(
    workloads: Optional[List[WorkloadSpec]] = None,
    seed: int = 0,
    machine: Optional[MachineParams] = None,
    rounds: int = 2,
    scale: float = 1.0,
) -> ExperimentSpec:
    """Every Table 1 cell as a declarative grid (126 runs at full scale)."""
    workloads = workloads if workloads is not None else table1_workloads(scale)
    machine = machine or MachineParams.xplorer8()
    baselines = tuple(
        Cell(workload=w, machine=machine, seed=seed) for w in workloads
    )

    def cells_for(results: GridResults):
        grid = []
        for w, base in zip(workloads, baselines):
            interval, times = interval_times(results[base].sim_time, rounds)
            row = {
                s: Cell(
                    workload=w,
                    scheme=scheme_spec(s, times, interval),
                    machine=machine,
                    seed=seed,
                )
                for s in SCHEMES_TABLE1
            }
            grid.append((w, base, interval, row))
        return grid

    def plan(results: GridResults):
        return [c for _, _, _, row in cells_for(results) for c in row.values()]

    def reduce(results: GridResults) -> TableResult:
        wrs: List[WorkloadResult] = []
        for w, base, interval, row in cells_for(results):
            wrs.append(
                WorkloadResult(
                    label=w.label,
                    normal=results[base],
                    interval=interval,
                    rounds=rounds,
                    reports={s: results[c] for s, c in row.items()},
                )
            )
        rows = [{s: wr.per_checkpoint(s) for s in SCHEMES_TABLE1} for wr in wrs]
        view = TableView(
            name="table1",
            title="Table 1: overhead per checkpoint (seconds)",
            headers=["application"] + [s.upper() for s in SCHEMES_TABLE1],
            rows=[
                [wr.label] + [wr.per_checkpoint(s) for s in SCHEMES_TABLE1]
                for wr in wrs
            ],
            fmt=fmt_seconds,
        )
        c1 = SchemeComparison.over(rows, "coord_nb", "indep")
        c2 = SchemeComparison.over(rows, "indep_m", "coord_nbm")
        c3 = SchemeComparison.over(rows, "coord_nbms", "indep_m")
        return TableResult(
            name="table1",
            views=[view],
            shapes={
                "nb_beats_indep_majority": c1.a_wins > c1.b_wins,
                "indep_m_beats_nbm_majority": c2.a_wins > c2.b_wins,
                "nbms_beats_indep_m_majority": c3.a_wins > c3.b_wins,
            },
            summary_lines=[
                f"Coord_NB vs Indep       : {c1}",
                f"Indep_M  vs Coord_NBM   : {c2}",
                f"Coord_NBMS vs Indep_M   : {c3}",
            ],
            data={
                "results": wrs,
                "rows": rows,
                "labels": [wr.label for wr in wrs],
                "schemes": SCHEMES_TABLE1,
            },
        )

    return ExperimentSpec(
        name="table1",
        title="Table 1 — overhead per checkpoint",
        baselines=baselines,
        plan=plan,
        reduce=reduce,
    )


def run_table1(
    workloads: Optional[List[WorkloadSpec]] = None,
    seed: int = 0,
    machine: Optional[MachineParams] = None,
    rounds: int = 2,
    scale: float = 1.0,
    executor: Optional[GridExecutor] = None,
) -> TableResult:
    """Execute every Table 1 cell and reduce to the rendered table."""
    return run_spec(
        table1_spec(
            workloads=workloads,
            seed=seed,
            machine=machine,
            rounds=rounds,
            scale=scale,
        ),
        executor=executor,
    )
