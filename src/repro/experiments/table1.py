"""Table 1: overhead per checkpoint, 21 configurations x 5 schemes.

Regenerates the paper's central comparison. The quantities are per-
checkpoint overheads in (simulated) seconds:

    overhead_per_ckpt = (T_scheme - T_normal) / checkpoint_rounds

Headline shapes asserted by the benchmark:
  * ``Indep`` does *not* beat ``Coord_NB`` overall (paper: 15 of 21 worse);
  * ``Indep_M`` beats ``Coord_NBM`` in a clear majority (paper: 12 of 15);
  * ``Coord_NBMS`` is the best column nearly everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..analysis import SchemeComparison, fmt_seconds, render_table
from ..machine import MachineParams
from .harness import SCHEMES_TABLE1, WorkloadResult, run_workload
from .workloads import Workload, table1_workloads

__all__ = ["Table1Result", "run_table1"]


@dataclass
class Table1Result:
    """All measurements behind Table 1, plus the paper's summary stats."""

    results: List[WorkloadResult]
    schemes: tuple = SCHEMES_TABLE1

    # -- table ------------------------------------------------------------

    def rows(self) -> List[Dict[str, float]]:
        return [
            {s: res.per_checkpoint(s) for s in self.schemes}
            for res in self.results
        ]

    def render(self) -> str:
        headers = ["application"] + [s.upper() for s in self.schemes]
        body = [
            [res.label] + [res.per_checkpoint(s) for s in self.schemes]
            for res in self.results
        ]
        return render_table(
            headers,
            body,
            title="Table 1: overhead per checkpoint (seconds)",
            fmt=fmt_seconds,
        )

    # -- headline comparisons ----------------------------------------------

    def indep_vs_nb(self) -> SchemeComparison:
        """Paper: Indep worse than Coord_NB in 15 of 21 cases."""
        return SchemeComparison.over(self.rows(), "coord_nb", "indep")

    def indep_m_vs_nbm(self) -> SchemeComparison:
        """Paper: Indep_M better than Coord_NBM in 12 of 15 cases."""
        return SchemeComparison.over(self.rows(), "indep_m", "coord_nbm")

    def nbms_vs_indep_m(self) -> SchemeComparison:
        """Paper: Coord_NBMS performs much better than Indep_M."""
        return SchemeComparison.over(self.rows(), "coord_nbms", "indep_m")

    def summary(self) -> str:
        return "\n".join(
            [
                f"Coord_NB vs Indep       : {self.indep_vs_nb()}",
                f"Indep_M  vs Coord_NBM   : {self.indep_m_vs_nbm()}",
                f"Coord_NBMS vs Indep_M   : {self.nbms_vs_indep_m()}",
            ]
        )

    def shape_holds(self) -> Dict[str, bool]:
        """The three boolean claims this table supports in the paper."""
        c1 = self.indep_vs_nb()
        c2 = self.indep_m_vs_nbm()
        c3 = self.nbms_vs_indep_m()
        return {
            "nb_beats_indep_majority": c1.a_wins > c1.b_wins,
            "indep_m_beats_nbm_majority": c2.a_wins > c2.b_wins,
            "nbms_beats_indep_m_majority": c3.a_wins > c3.b_wins,
        }


def run_table1(
    workloads: Optional[List[Workload]] = None,
    seed: int = 0,
    machine: Optional[MachineParams] = None,
    rounds: int = 2,
    verbose: bool = False,
) -> Table1Result:
    """Execute every Table 1 cell (126 runs at full scale)."""
    workloads = workloads if workloads is not None else table1_workloads()
    results = []
    for workload in workloads:
        res = run_workload(
            workload, SCHEMES_TABLE1, rounds=rounds, seed=seed, machine=machine
        )
        if verbose:  # pragma: no cover - console progress
            cells = ", ".join(
                f"{s}={res.per_checkpoint(s):.2f}s" for s in SCHEMES_TABLE1
            )
            print(f"{res.label:>12}  T={res.normal_time:7.1f}s  {cells}")
        results.append(res)
    return Table1Result(results=results)
