"""Shared experiment machinery: scheme construction and workload execution.

The declarative grid (:mod:`repro.experiments.grid`) is the primary way
experiments run; this module holds the pieces shared between the grid
specs and direct imperative use:

* :func:`scheme_spec` — the measured schemes as declarative
  :class:`~repro.experiments.grid.SchemeSpec`s (independent timers get
  their skew as a fixed fraction of the checkpoint interval);
* :func:`make_scheme` — the same factory returning a live scheme object
  (examples and unit tests drive :class:`CheckpointRuntime` directly);
* :func:`run_workload` / :class:`WorkloadResult` — one table row
  measured inline, without the grid (unit tests of the runtime).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence

from ..chklib import CheckpointRuntime
from ..chklib.runtime import RunReport
from ..chklib.schemes.base import Scheme
from ..chklib.schemes.registry import REGISTRY
from ..machine import MachineParams
from .grid import SchemeSpec

__all__ = [
    "SCHEMES_TABLE1",
    "SCHEMES_TABLE23",
    "INDEP_SKEW_FRACTION",
    "scheme_spec",
    "make_scheme",
    "run_workload",
    "WorkloadResult",
]

#: column order of the paper's Table 1, extended with the third protocol
#: family (communication-induced + sender-based message logging).
SCHEMES_TABLE1 = (
    "coord_nb",
    "indep",
    "coord_nbm",
    "indep_m",
    "coord_nbms",
    "cic",
    "indep_m_mlog",
)
#: column order of the paper's Tables 2 and 3, with the same extension.
SCHEMES_TABLE23 = (
    "coord_nb",
    "indep",
    "coord_nbms",
    "indep_m",
    "cic",
    "indep_m_mlog",
)

#: timer-driven schemes start aligned and drift; the skew amplitude as a
#: fraction of the checkpoint interval.
INDEP_SKEW_FRACTION = 0.25


def scheme_spec(name: str, times: Sequence[float], interval: float) -> SchemeSpec:
    """One of the measured schemes (plus ablation/extension variants) as
    a declarative spec.  Timer-driven families (independent, cic, msglog
    — the registry knows which) get the standard timer skew
    (:data:`INDEP_SKEW_FRACTION` of *interval*); coordinated variants
    carry no skew."""
    if REGISTRY.skewed(name):
        return SchemeSpec.of(name, times, skew=INDEP_SKEW_FRACTION * interval)
    return SchemeSpec.of(name, times)


def make_scheme(name: str, times: Sequence[float], interval: float) -> Scheme:
    """Instantiate one of the measured schemes (see :func:`scheme_spec`)."""
    return scheme_spec(name, times, interval).build()


@dataclass
class WorkloadResult:
    """One table row's measurements: the normal run plus each scheme's."""

    label: str
    normal: RunReport
    interval: float
    rounds: int
    reports: Dict[str, RunReport] = field(default_factory=dict)

    @property
    def normal_time(self) -> float:
        return self.normal.sim_time

    def overhead_seconds(self, scheme: str) -> float:
        return self.reports[scheme].sim_time - self.normal.sim_time

    def overhead_percent(self, scheme: str) -> float:
        return 100.0 * self.overhead_seconds(scheme) / self.normal.sim_time

    def per_checkpoint(self, scheme: str) -> float:
        return self.overhead_seconds(scheme) / self.rounds


def run_workload(
    workload,
    schemes: Iterable[str],
    rounds: int = 3,
    seed: int = 0,
    machine: Optional[MachineParams] = None,
    interval_divisor: float = 1.5,
) -> WorkloadResult:
    """Run a workload uncheckpointed, then once per scheme (inline, no
    grid — the unit-test path).

    The checkpoint interval is ``T_normal / (rounds + interval_divisor)``:
    `rounds` checkpoints fire inside the run with enough tail left for the
    last round's background writes and commit to finish.
    """
    machine = machine or MachineParams.xplorer8()
    normal = CheckpointRuntime(workload.make(), machine=machine, seed=seed).run()
    interval = normal.sim_time / (rounds + interval_divisor)
    times = [interval * (i + 1) for i in range(rounds)]
    result = WorkloadResult(
        label=workload.label, normal=normal, interval=interval, rounds=rounds
    )
    for name in schemes:
        scheme = make_scheme(name, times, interval)
        report = CheckpointRuntime(
            workload.make(), scheme=scheme, machine=machine, seed=seed
        ).run()
        result.reports[name] = report
    return result
