"""Shared experiment machinery: scheme factories and workload execution."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..chklib import CheckpointRuntime, CoordinatedScheme, IndependentScheme
from ..chklib.runtime import RunReport
from ..chklib.schemes.base import Scheme
from ..machine import MachineParams

__all__ = [
    "SCHEMES_TABLE1",
    "SCHEMES_TABLE23",
    "make_scheme",
    "run_workload",
    "WorkloadResult",
]

#: column order of the paper's Table 1.
SCHEMES_TABLE1 = ("coord_nb", "indep", "coord_nbm", "indep_m", "coord_nbms")
#: column order of the paper's Tables 2 and 3.
SCHEMES_TABLE23 = ("coord_nb", "indep", "coord_nbms", "indep_m")

#: independent timers start aligned and drift; the skew amplitude as a
#: fraction of the checkpoint interval.
INDEP_SKEW_FRACTION = 0.25


def make_scheme(name: str, times: Sequence[float], interval: float) -> Scheme:
    """Instantiate one of the five measured schemes (plus ablations)."""
    skew = INDEP_SKEW_FRACTION * interval
    if name == "coord_nb":
        return CoordinatedScheme.NB(times)
    if name == "coord_nbm":
        return CoordinatedScheme.NBM(times)
    if name == "coord_nbms":
        return CoordinatedScheme.NBMS(times)
    if name == "coord_nbs":
        return CoordinatedScheme.NBS(times)
    if name == "indep":
        return IndependentScheme.Indep(times, skew=skew)
    if name == "indep_m":
        return IndependentScheme.IndepM(times, skew=skew)
    if name == "indep_log":
        return IndependentScheme.Indep(times, skew=skew, logging=True)
    if name == "indep_m_log":
        return IndependentScheme.IndepM(times, skew=skew, logging=True)
    # extension variants (copy-on-write capture, incremental writes)
    if name == "coord_nbc":
        return CoordinatedScheme.NBC(times)
    if name == "coord_nbcs":
        return CoordinatedScheme.NBCS(times)
    if name == "indep_c":
        return IndependentScheme.IndepC(times, skew=skew)
    if name == "coord_nb_inc":
        return CoordinatedScheme.NB(times, incremental=True)
    if name == "coord_nbms_inc":
        return CoordinatedScheme.NBMS(times, incremental=True)
    if name == "coord_nbcs_inc":
        return CoordinatedScheme.NBCS(times, incremental=True)
    raise ValueError(f"unknown scheme {name!r}")


@dataclass
class WorkloadResult:
    """One table row's measurements: the normal run plus each scheme's."""

    label: str
    normal: RunReport
    interval: float
    rounds: int
    reports: Dict[str, RunReport] = field(default_factory=dict)

    @property
    def normal_time(self) -> float:
        return self.normal.sim_time

    def overhead_seconds(self, scheme: str) -> float:
        return self.reports[scheme].sim_time - self.normal.sim_time

    def overhead_percent(self, scheme: str) -> float:
        return 100.0 * self.overhead_seconds(scheme) / self.normal.sim_time

    def per_checkpoint(self, scheme: str) -> float:
        return self.overhead_seconds(scheme) / self.rounds


def run_workload(
    workload,
    schemes: Iterable[str],
    rounds: int = 3,
    seed: int = 0,
    machine: Optional[MachineParams] = None,
    interval_divisor: float = 1.5,
) -> WorkloadResult:
    """Run a workload uncheckpointed, then once per scheme.

    The checkpoint interval is ``T_normal / (rounds + interval_divisor)``:
    `rounds` checkpoints fire inside the run with enough tail left for the
    last round's background writes and commit to finish.
    """
    machine = machine or MachineParams.xplorer8()
    normal = CheckpointRuntime(workload.make(), machine=machine, seed=seed).run()
    interval = normal.sim_time / (rounds + interval_divisor)
    times = [interval * (i + 1) for i in range(rounds)]
    result = WorkloadResult(
        label=workload.label, normal=normal, interval=interval, rounds=rounds
    )
    for name in schemes:
        scheme = make_scheme(name, times, interval)
        report = CheckpointRuntime(
            workload.make(), scheme=scheme, machine=machine, seed=seed
        ).run()
        result.reports[name] = report
    return result
