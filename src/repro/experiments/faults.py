"""E2 extension: completion time under failures, and the optimal interval.

The paper measures failure-free overhead only; checkpointing exists for
the failure case. This experiment closes the loop:

* **F1 — completion time vs failure rate**: run a workload with crashes
  sampled from an exponential inter-arrival distribution (deterministic
  per seed) under the best coordinated scheme, independent with logging,
  and independent without logging (domino: every crash restarts from
  scratch). Completion time degrades gracefully for the first two and
  catastrophically for the third.

* **F2 — checkpoint-interval sweep vs Young's formula**: with failures,
  both too-frequent and too-rare checkpointing cost time; the measured
  optimum should sit near Young's first-order estimate
  ``T_opt = sqrt(2 * delta * MTBF)`` where *delta* is the per-checkpoint
  overhead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analysis import fmt_seconds, render_table
from ..apps import SOR
from ..chklib import (
    CheckpointRuntime,
    CoordinatedScheme,
    FaultPlan,
    IndependentScheme,
)
from ..fault.plans import crash_times as _shared_crash_times
from ..machine import MachineParams

__all__ = [
    "FailureRateResult",
    "run_failure_rates",
    "IntervalSweepResult",
    "run_interval_sweep",
    "young_interval",
]


def young_interval(per_checkpoint_overhead: float, mtbf: float) -> float:
    """Young's first-order optimal checkpoint interval."""
    if per_checkpoint_overhead <= 0 or mtbf <= 0:
        raise ValueError("overhead and MTBF must be positive")
    return math.sqrt(2.0 * per_checkpoint_overhead * mtbf)


def _crash_times(mtbf: float, horizon: float, seed: int, stream: str) -> List[float]:
    """Deterministic exponential crash arrivals covering [0, horizon]."""
    return _shared_crash_times(mtbf, horizon, seed=seed, stream=stream)


def _default_app():
    return SOR(n=128, iters=480, flops_per_cell=40.0)


@dataclass
class FailureRateResult:
    mtbf_factors: List[float]  #: MTBF as multiples of the failure-free time
    normal_time: float
    completion: Dict[str, Dict[float, float]]  #: scheme -> factor -> time

    def render(self) -> str:
        schemes = sorted(self.completion)
        headers = ["MTBF / T"] + schemes
        body = []
        for f in self.mtbf_factors:
            row = [f"{f:.1f}" if f != float("inf") else "inf"]
            for s in schemes:
                row.append(self.completion[s][f] / self.normal_time)
            body.append(row)
        return render_table(
            headers,
            body,
            title="F1: mean completion time (x failure-free) vs failure rate",
            fmt=lambda v: f"{v:.2f}x" if isinstance(v, float) else str(v),
        )

    def shape_holds(self) -> Dict[str, bool]:
        worst = min(f for f in self.mtbf_factors if f != float("inf"))
        at_worst = {s: self.completion[s][worst] for s in self.completion}
        return {
            # more failures -> more time, for every scheme (factors sorted
            # descending: later entries mean higher failure rates)
            "monotone_in_failure_rate": all(
                self.completion[s][b] >= self.completion[s][a] * 0.999
                for s in self.completion
                for a, b in zip(self.mtbf_factors, self.mtbf_factors[1:])
            ),
            # recovery keeps the degradation graceful for checkpointing
            # schemes even at MTBF = T/2 ...
            "coordinated_graceful": at_worst["coord_nbms"]
            < 4.0 * self.normal_time,
            # ... while the domino case re-runs from scratch per crash
            "domino_catastrophic": at_worst["indep_m_nolog"]
            > 1.3 * at_worst["coord_nbms"],
        }


def run_failure_rates(
    mtbf_factors: Sequence[float] = (float("inf"), 1.0, 0.5, 0.33),
    seed: int = 0,
    machine: Optional[MachineParams] = None,
    rounds: int = 4,
    trials: int = 4,
) -> FailureRateResult:
    """Mean completion time over *trials* independent (deterministic)
    crash sequences per failure rate; all schemes face identical crashes
    within a trial."""
    machine = machine or MachineParams.xplorer8()
    normal = CheckpointRuntime(_default_app(), machine=machine, seed=seed).run()
    T = normal.sim_time
    interval = T / (rounds + 1.5)
    times = [interval * (i + 1) for i in range(rounds)]
    skew = 0.1 * interval
    completion: Dict[str, Dict[float, float]] = {}
    factors = sorted(mtbf_factors, reverse=True)
    for scheme_name in ("coord_nbms", "indep_m_log", "indep_m_nolog"):
        completion[scheme_name] = {}
        for factor in factors:
            total = 0.0
            n_trials = 1 if factor == float("inf") else trials
            for trial in range(n_trials):
                if factor == float("inf"):
                    plan = None
                else:
                    plan = FaultPlan(
                        crash_times=tuple(
                            _crash_times(
                                factor * T, 40 * T, seed, f"f1@{factor}#{trial}"
                            )
                        )
                    )
                if scheme_name == "coord_nbms":
                    scheme = CoordinatedScheme.NBMS(times)
                elif scheme_name == "indep_m_log":
                    scheme = IndependentScheme.IndepM(
                        times, skew=skew, logging=True
                    )
                else:
                    scheme = IndependentScheme.IndepM(times, skew=skew)
                report = CheckpointRuntime(
                    _default_app(),
                    scheme=scheme,
                    machine=machine,
                    seed=seed,
                    fault_plan=plan,
                ).run()
                total += report.sim_time
            completion[scheme_name][factor] = total / n_trials
    return FailureRateResult(
        mtbf_factors=factors, normal_time=T, completion=completion
    )


@dataclass
class IntervalSweepResult:
    intervals: List[float]
    completion: Dict[float, float]
    mtbf: float
    delta: float  #: measured per-checkpoint overhead at the mid interval
    normal_time: float

    @property
    def measured_optimum(self) -> float:
        return min(self.intervals, key=lambda i: self.completion[i])

    @property
    def young_estimate(self) -> float:
        return young_interval(self.delta, self.mtbf)

    def render(self) -> str:
        headers = ["interval (s)", "completion (s)", "vs normal"]
        body = [
            [f"{i:.0f}", fmt_seconds(self.completion[i]),
             f"{self.completion[i] / self.normal_time:.2f}x"]
            for i in self.intervals
        ]
        table = render_table(
            headers, body, title="F2: completion time vs checkpoint interval"
        )
        footer = (
            f"\nmeasured optimum ~{self.measured_optimum:.0f} s; "
            f"Young's estimate sqrt(2*{self.delta:.2f}*{self.mtbf:.0f}) = "
            f"{self.young_estimate:.0f} s"
        )
        return table + footer

    def shape_holds(self) -> Dict[str, bool]:
        xs = [self.completion[i] for i in self.intervals]
        best = self.measured_optimum
        return {
            # U-shape: the extremes are worse than the optimum
            "u_shape": xs[0] > min(xs) and xs[-1] > min(xs),
            # Young's estimate lands within the sweep's resolution
            # (between half and double the measured optimum)
            "young_within_2x": 0.5 * best <= self.young_estimate <= 2.0 * best,
        }


def run_interval_sweep(
    interval_fractions: Sequence[float] = (0.04, 0.08, 0.15, 0.3, 0.6),
    mtbf_factor: float = 1.0,
    seed: int = 0,
    machine: Optional[MachineParams] = None,
) -> IntervalSweepResult:
    machine = machine or MachineParams.xplorer8()
    normal = CheckpointRuntime(_default_app(), machine=machine, seed=seed).run()
    T = normal.sim_time
    mtbf = mtbf_factor * T
    plan = FaultPlan(
        crash_times=tuple(_crash_times(mtbf, 30 * T, seed, "sweep"))
    )
    completion: Dict[float, float] = {}
    intervals = [f * T for f in interval_fractions]
    for interval in intervals:
        times = [interval * (i + 1) for i in range(int(30 * T / interval))]
        report = CheckpointRuntime(
            _default_app(),
            scheme=CoordinatedScheme.NBMS(times),
            machine=machine,
            seed=seed,
            fault_plan=plan,
        ).run()
        completion[interval] = report.sim_time
    # measure delta (per-checkpoint overhead) failure-free at the mid point
    mid = intervals[len(intervals) // 2]
    k = max(1, int(T / mid) - 1)
    ff = CheckpointRuntime(
        _default_app(),
        scheme=CoordinatedScheme.NBMS([mid * (i + 1) for i in range(k)]),
        machine=machine,
        seed=seed,
    ).run()
    delta = max(1e-6, (ff.sim_time - T) / k)
    return IntervalSweepResult(
        intervals=intervals,
        completion=completion,
        mtbf=mtbf,
        delta=delta,
        normal_time=T,
    )
