"""E2 extension: completion time under failures, and the optimal interval.

The paper measures failure-free overhead only; checkpointing exists for
the failure case. This experiment closes the loop:

* **F1 — completion time vs failure rate**: run a workload with crashes
  sampled from an exponential inter-arrival distribution (deterministic
  per seed) under the best coordinated scheme, independent with logging,
  and independent without logging (domino: every crash restarts from
  scratch). Completion time degrades gracefully for the first two and
  catastrophically for the third.

* **F2 — checkpoint-interval sweep vs Young's formula**: with failures,
  both too-frequent and too-rare checkpointing cost time; the measured
  optimum should sit near Young's first-order estimate
  ``T_opt = sqrt(2 * delta * MTBF)`` where *delta* is the per-checkpoint
  overhead.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from ..analysis import TableResult, TableView, fmt_seconds
from ..fault.model import FaultModel
from ..fault.plans import crash_times as _shared_crash_times
from ..machine import MachineParams
from .executor import GridExecutor, run_spec
from .grid import Cell, ExperimentSpec, GridResults, SchemeSpec, WorkloadSpec
from .workloads import scaled_iters

__all__ = [
    "failure_rates_spec",
    "run_failure_rates",
    "interval_sweep_spec",
    "run_interval_sweep",
    "young_interval",
]

_F1_SCHEMES = ("coord_nbms", "indep_m_log", "indep_m_nolog")


def young_interval(per_checkpoint_overhead: float, mtbf: float) -> float:
    """Young's first-order optimal checkpoint interval."""
    if per_checkpoint_overhead <= 0 or mtbf <= 0:
        raise ValueError("overhead and MTBF must be positive")
    return math.sqrt(2.0 * per_checkpoint_overhead * mtbf)


def _crash_times(mtbf: float, horizon: float, seed: int, stream: str) -> List[float]:
    """Deterministic exponential crash arrivals covering [0, horizon]."""
    return _shared_crash_times(mtbf, horizon, seed=seed, stream=stream)


def _default_workload(scale: float) -> WorkloadSpec:
    return WorkloadSpec.of(
        "sor-128",
        "sor",
        n=128,
        iters=scaled_iters(480, scale),
        flops_per_cell=40.0,
    )


def _f1_scheme(name: str, times, skew: float) -> SchemeSpec:
    if name == "coord_nbms":
        return SchemeSpec.of("coord_nbms", times)
    return SchemeSpec.of(name, times, skew=skew)


def failure_rates_spec(
    mtbf_factors: Sequence[float] = (float("inf"), 1.0, 0.5, 0.33),
    seed: int = 0,
    machine: Optional[MachineParams] = None,
    rounds: int = 4,
    trials: int = 4,
    workload: Optional[WorkloadSpec] = None,
    scale: float = 1.0,
) -> ExperimentSpec:
    """F1: mean completion time over *trials* independent (deterministic)
    crash sequences per failure rate; all schemes face identical crashes
    within a trial."""
    machine = machine or MachineParams.xplorer8()
    workload = workload or _default_workload(scale)
    factors = sorted(mtbf_factors, reverse=True)
    baseline = Cell(workload=workload, machine=machine, seed=seed)

    def cells_for(results: GridResults):
        T = results[baseline].sim_time
        interval = T / (rounds + 1.5)
        times = tuple(interval * (i + 1) for i in range(rounds))
        skew = 0.1 * interval
        grid = {}
        for scheme_name in _F1_SCHEMES:
            for factor in factors:
                n_trials = 1 if factor == float("inf") else trials
                for trial in range(n_trials):
                    if factor == float("inf"):
                        fault = None
                    else:
                        fault = FaultModel(
                            machine_crash_times=tuple(
                                _crash_times(
                                    factor * T,
                                    40 * T,
                                    seed,
                                    f"f1@{factor}#{trial}",
                                )
                            )
                        )
                    grid[(scheme_name, factor, trial)] = Cell(
                        workload=workload,
                        scheme=_f1_scheme(scheme_name, times, skew),
                        machine=machine,
                        seed=seed,
                        fault=fault,
                    )
        return grid

    def plan(results: GridResults):
        return list(cells_for(results).values())

    def reduce(results: GridResults) -> TableResult:
        T = results[baseline].sim_time
        grid = cells_for(results)
        completion: Dict[str, Dict[float, float]] = {}
        for scheme_name in _F1_SCHEMES:
            completion[scheme_name] = {}
            for factor in factors:
                n_trials = 1 if factor == float("inf") else trials
                total = sum(
                    results[grid[(scheme_name, factor, trial)]].sim_time
                    for trial in range(n_trials)
                )
                completion[scheme_name][factor] = total / n_trials
        schemes = sorted(completion)
        view = TableView(
            name="failure-rates",
            title="F1: mean completion time (x failure-free) vs failure rate",
            headers=["MTBF / T"] + schemes,
            rows=[
                [f"{f:.1f}" if f != float("inf") else "inf"]
                + [completion[s][f] / T for s in schemes]
                for f in factors
            ],
            fmt=lambda v: f"{v:.2f}x" if isinstance(v, float) else str(v),
        )
        worst = min(f for f in factors if f != float("inf"))
        at_worst = {s: completion[s][worst] for s in completion}
        return TableResult(
            name="failure-rates",
            views=[view],
            shapes={
                # more failures -> more time, for every scheme (factors
                # sorted descending: later entries mean higher failure
                # rates)
                "monotone_in_failure_rate": all(
                    completion[s][b] >= completion[s][a] * 0.999
                    for s in completion
                    for a, b in zip(factors, factors[1:])
                ),
                # recovery keeps the degradation graceful for checkpointing
                # schemes even at MTBF = T/2 ...
                "coordinated_graceful": at_worst["coord_nbms"] < 4.0 * T,
                # ... while the domino case re-runs from scratch per crash
                "domino_catastrophic": at_worst["indep_m_nolog"]
                > 1.3 * at_worst["coord_nbms"],
            },
            summary_lines=[
                f"at MTBF = {worst:.2f}xT: "
                + ", ".join(
                    f"{s}={at_worst[s] / T:.2f}x" for s in schemes
                ),
            ],
            data={
                "mtbf_factors": factors,
                "normal_time": T,
                "completion": completion,
            },
        )

    return ExperimentSpec(
        name="failure-rates",
        title="F1 — completion time vs failure rate",
        baselines=(baseline,),
        plan=plan,
        reduce=reduce,
    )


def run_failure_rates(
    mtbf_factors: Sequence[float] = (float("inf"), 1.0, 0.5, 0.33),
    seed: int = 0,
    machine: Optional[MachineParams] = None,
    rounds: int = 4,
    trials: int = 4,
    scale: float = 1.0,
    executor: Optional[GridExecutor] = None,
) -> TableResult:
    return run_spec(
        failure_rates_spec(
            mtbf_factors=mtbf_factors,
            seed=seed,
            machine=machine,
            rounds=rounds,
            trials=trials,
            scale=scale,
        ),
        executor=executor,
    )


def interval_sweep_spec(
    interval_fractions: Sequence[float] = (0.04, 0.08, 0.15, 0.3, 0.6),
    mtbf_factor: float = 1.0,
    seed: int = 0,
    machine: Optional[MachineParams] = None,
    workload: Optional[WorkloadSpec] = None,
    scale: float = 1.0,
) -> ExperimentSpec:
    """F2: completion time vs checkpoint interval, against Young's
    estimate."""
    machine = machine or MachineParams.xplorer8()
    workload = workload or _default_workload(scale)
    fractions = list(interval_fractions)
    baseline = Cell(workload=workload, machine=machine, seed=seed)

    def cells_for(results: GridResults):
        T = results[baseline].sim_time
        mtbf = mtbf_factor * T
        fault = FaultModel(
            machine_crash_times=tuple(_crash_times(mtbf, 30 * T, seed, "sweep"))
        )
        intervals = [f * T for f in fractions]
        sweep = {
            interval: Cell(
                workload=workload,
                scheme=SchemeSpec.of(
                    "coord_nbms",
                    tuple(
                        interval * (i + 1)
                        for i in range(int(30 * T / interval))
                    ),
                ),
                machine=machine,
                seed=seed,
                fault=fault,
            )
            for interval in intervals
        }
        # failure-free run at the mid interval, to measure the
        # per-checkpoint overhead delta Young's formula needs.
        mid = intervals[len(intervals) // 2]
        k = max(1, int(T / mid) - 1)
        ff = Cell(
            workload=workload,
            scheme=SchemeSpec.of(
                "coord_nbms", tuple(mid * (i + 1) for i in range(k))
            ),
            machine=machine,
            seed=seed,
        )
        return T, mtbf, intervals, sweep, (mid, k, ff)

    def plan(results: GridResults):
        _, _, _, sweep, (_, _, ff) = cells_for(results)
        return list(sweep.values()) + [ff]

    def reduce(results: GridResults) -> TableResult:
        T, mtbf, intervals, sweep, (mid, k, ff) = cells_for(results)
        completion = {
            interval: results[cell].sim_time
            for interval, cell in sweep.items()
        }
        delta = max(1e-6, (results[ff].sim_time - T) / k)
        measured_optimum = min(intervals, key=lambda i: completion[i])
        young = young_interval(delta, mtbf)
        view = TableView(
            name="interval-sweep",
            title="F2: completion time vs checkpoint interval",
            headers=["interval (s)", "completion (s)", "vs normal"],
            rows=[
                [
                    f"{i:.0f}",
                    fmt_seconds(completion[i]),
                    f"{completion[i] / T:.2f}x",
                ]
                for i in intervals
            ],
            footer=(
                f"measured optimum ~{measured_optimum:.0f} s; "
                f"Young's estimate sqrt(2*{delta:.2f}*{mtbf:.0f}) = "
                f"{young:.0f} s"
            ),
        )
        xs = [completion[i] for i in intervals]
        return TableResult(
            name="interval-sweep",
            views=[view],
            shapes={
                # U-shape: the extremes are worse than the optimum
                "u_shape": xs[0] > min(xs) and xs[-1] > min(xs),
                # Young's estimate lands within the sweep's resolution
                # (between half and double the measured optimum)
                "young_within_2x": (
                    0.5 * measured_optimum <= young <= 2.0 * measured_optimum
                ),
            },
            summary_lines=[
                f"measured optimum ~{measured_optimum:.0f} s vs Young "
                f"{young:.0f} s",
            ],
            data={
                "intervals": intervals,
                "completion": completion,
                "mtbf": mtbf,
                "delta": delta,
                "normal_time": T,
                "measured_optimum": measured_optimum,
                "young_estimate": young,
            },
        )

    return ExperimentSpec(
        name="interval-sweep",
        title="F2 — interval sweep vs Young's formula",
        baselines=(baseline,),
        plan=plan,
        reduce=reduce,
    )


def run_interval_sweep(
    interval_fractions: Sequence[float] = (0.04, 0.08, 0.15, 0.3, 0.6),
    mtbf_factor: float = 1.0,
    seed: int = 0,
    machine: Optional[MachineParams] = None,
    scale: float = 1.0,
    executor: Optional[GridExecutor] = None,
) -> TableResult:
    return run_spec(
        interval_sweep_spec(
            interval_fractions=interval_fractions,
            mtbf_factor=mtbf_factor,
            seed=seed,
            machine=machine,
            scale=scale,
        ),
        executor=executor,
    )
