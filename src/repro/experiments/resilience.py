"""R3: recovery under faulty stable storage — the self-healing claims.

The paper assumes stable storage is *stable*. The fault-injection
subsystem drops that assumption: writes and reads fail transiently with a
configurable probability, and completed checkpoint images rot silently
(caught only by checksum validation at recovery time). This experiment
runs all five headline schemes under increasing storage-fault rates, each
run facing a machine crash, and checks the defensive machinery end to end:

* every run still finishes with the **exact** undisturbed result —
  retries, round aborts, quarantine and line fallback degrade performance,
  never correctness;
* every recovery restores a line satisfying the scheme's own
  recoverability requirement (``RecoveryEvent.line_consistent``);
* the fault-free column stays byte-for-byte clean (no retries, no aborts,
  no quarantines), so the machinery costs nothing when storage behaves.

A second, *targeted* pass forces the rare paths deterministically: a
scheduled write failure with a zero-retry budget (coordinated must abort
the 2PC round; independent drops the local checkpoint), and scheduled
silent corruption of a committed checkpoint (recovery must quarantine it
and fall back to an older line).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis import render_table
from ..apps import SOR
from ..chklib import CheckpointRuntime, CoordinatedScheme, IndependentScheme, RunReport
from ..fault import FaultModel, RetryPolicy, StorageFaultSpec
from ..machine import MachineParams

__all__ = ["ResilienceResult", "run_resilience", "RESILIENCE_SCHEMES"]

#: the five headline schemes of the sweep (paper naming).
RESILIENCE_SCHEMES = (
    "coord_nb",
    "coord_nbm",
    "coord_nbms",
    "indep_m_log",
    "indep_m_nolog",
)


def _default_app():
    app = SOR(n=26, iters=10, flops_per_cell=3000.0)
    app.image_bytes = 32 * 1024
    return app


def _make_scheme(name: str, times: Sequence[float], skew: float):
    if name == "coord_nb":
        return CoordinatedScheme.NB(times)
    if name == "coord_nbm":
        return CoordinatedScheme.NBM(times)
    if name == "coord_nbms":
        return CoordinatedScheme.NBMS(times)
    if name == "indep_m_log":
        return IndependentScheme.IndepM(times, skew=skew, logging=True)
    if name == "indep_m_nolog":
        return IndependentScheme.IndepM(times, skew=skew)
    raise ValueError(f"unknown scheme {name!r}")


def _result_key(report: RunReport) -> Any:
    return report.result["sum"]


@dataclass
class ResilienceResult:
    fault_rates: List[float]
    normal_time: float
    expected: Any  #: the undisturbed application result
    #: scheme -> fault rate -> report (probabilistic sweep, crash at 0.8 T)
    sweep: Dict[str, Dict[float, RunReport]]
    #: scheme -> report with one scheduled unretryable write failure
    write_failure: Dict[str, RunReport]
    #: scheme -> report with one committed checkpoint silently corrupted
    corruption: Dict[str, RunReport]

    # -- views ----------------------------------------------------------------

    def _all_reports(self) -> List[RunReport]:
        return (
            [r for per in self.sweep.values() for r in per.values()]
            + list(self.write_failure.values())
            + list(self.corruption.values())
        )

    def render(self) -> str:
        headers = [
            "scheme",
            "fault rate",
            "time",
            "faults w/r",
            "retries w/r",
            "aborted",
            "dropped",
            "quarantined",
            "recoveries",
        ]

        def row(name: str, label: str, rep: RunReport) -> List[str]:
            sound = all(ev.line_consistent for ev in rep.recoveries)
            return [
                name,
                label,
                f"{rep.sim_time / self.normal_time:.2f}x",
                f"{rep.storage_write_faults}/{rep.storage_read_faults}",
                f"{rep.storage_write_retries}/{rep.storage_read_retries}",
                str(rep.rounds_aborted),
                str(rep.ckpt_writes_failed),
                str(rep.checkpoints_quarantined),
                f"{len(rep.recoveries)}{'' if sound else ' UNSOUND'}",
            ]

        body = []
        for name in RESILIENCE_SCHEMES:
            for p in self.fault_rates:
                body.append(row(name, f"p={p:g}", self.sweep[name][p]))
        table = render_table(
            headers,
            body,
            title="R3: resilience under faulty stable storage (crash at 0.8 T)",
        )
        body2 = [
            row(name, "write-fail", self.write_failure[name])
            for name in RESILIENCE_SCHEMES
        ] + [
            row(name, "corrupt", self.corruption[name])
            for name in RESILIENCE_SCHEMES
        ]
        table2 = render_table(
            headers,
            body2,
            title="R3b: targeted faults (scheduled write failure / corruption)",
        )
        return table + "\n\n" + table2

    def shape_holds(self) -> Dict[str, bool]:
        reports = self._all_reports()
        clean = [self.sweep[s][0.0] for s in RESILIENCE_SCHEMES]
        high = max(self.fault_rates)
        hot = [self.sweep[s][high] for s in RESILIENCE_SCHEMES]
        coord = [self.write_failure[s] for s in RESILIENCE_SCHEMES if s.startswith("coord")]
        indep = [self.write_failure[s] for s in RESILIENCE_SCHEMES if s.startswith("indep")]
        return {
            # retries/aborts/quarantine degrade time, never correctness
            "all_results_exact": all(
                _result_key(r) == self.expected for r in reports
            ),
            # every recovery happened and restored a sound line
            "all_recoveries_sound": all(
                r.recoveries and all(ev.line_consistent for ev in r.recoveries)
                for r in reports
            ),
            # the machinery is free when storage behaves
            "fault_free_is_clean": all(
                r.storage_write_faults == 0
                and r.storage_read_faults == 0
                and r.storage_write_retries == 0
                and r.storage_read_retries == 0
                and r.rounds_aborted == 0
                and r.ckpt_writes_failed == 0
                and r.checkpoints_quarantined == 0
                for r in clean
            ),
            # the high-rate column actually exercised the injector ...
            "faults_injected": sum(
                r.storage_write_faults + r.storage_read_faults for r in hot
            )
            > 0,
            # ... and retries absorbed (most of) them
            "retries_absorb_faults": sum(r.storage_write_retries for r in hot) > 0,
            # an unretryable write failure aborts the coordinated round ...
            "coordinated_aborts_cleanly": all(
                r.rounds_aborted >= 1 for r in coord
            ),
            # ... while independent schemes just drop the local checkpoint
            "independent_drops_locally": all(
                r.ckpt_writes_failed >= 1 and r.rounds_aborted == 0
                for r in indep
            ),
            # silent corruption is caught and quarantined at recovery
            "corruption_quarantined": all(
                r.checkpoints_quarantined >= 1
                for r in self.corruption.values()
            ),
        }


def run_resilience(
    fault_rates: Sequence[float] = (0.0, 0.02, 0.10),
    seed: int = 0,
    machine: Optional[MachineParams] = None,
) -> ResilienceResult:
    """The full resilience sweep (deterministic per *seed*)."""
    machine = machine or MachineParams(n_nodes=4)
    normal = CheckpointRuntime(_default_app(), machine=machine, seed=seed).run()
    T = normal.sim_time
    times = [T / 4, T / 2]
    skew = T / 50

    def run_one(name: str, model: FaultModel) -> RunReport:
        return CheckpointRuntime(
            _default_app(),
            scheme=_make_scheme(name, times, skew),
            machine=machine,
            seed=seed,
            fault_model=model,
        ).run()

    sweep: Dict[str, Dict[float, RunReport]] = {}
    for name in RESILIENCE_SCHEMES:
        sweep[name] = {}
        for p in fault_rates:
            model = FaultModel(
                machine_crash_times=(0.8 * T,),
                storage=StorageFaultSpec(
                    write_fail_p=p, read_fail_p=p, corrupt_p=p / 2
                ),
            )
            sweep[name][p] = run_one(name, model)

    # targeted: the second storage write fails with no retry budget — the
    # cleanest way to force an abort (coordinated) / a drop (independent)
    write_failure = {
        name: run_one(
            name,
            FaultModel(
                machine_crash_times=(0.8 * T,),
                storage=StorageFaultSpec(fail_writes_at=(2,)),
                retry=RetryPolicy(max_retries=0),
            ),
        )
        for name in RESILIENCE_SCHEMES
    }
    # targeted: rank 1's second checkpoint rots after commit; the crash
    # then forces quarantine + fallback to an older line
    corruption = {
        name: run_one(
            name,
            FaultModel(
                machine_crash_times=(0.9 * T,),
                storage=StorageFaultSpec(corrupt_ckpts=((1, 2),)),
            ),
        )
        for name in RESILIENCE_SCHEMES
    }
    return ResilienceResult(
        fault_rates=sorted(fault_rates),
        normal_time=T,
        expected=_result_key(normal),
        sweep=sweep,
        write_failure=write_failure,
        corruption=corruption,
    )
