"""R3: recovery under faulty stable storage — the self-healing claims.

The paper assumes stable storage is *stable*. The fault-injection
subsystem drops that assumption: writes and reads fail transiently with a
configurable probability, and completed checkpoint images rot silently
(caught only by checksum validation at recovery time). This experiment
runs all five headline schemes under increasing storage-fault rates, each
run facing a machine crash, and checks the defensive machinery end to end:

* every run still finishes with the **exact** undisturbed result —
  retries, round aborts, quarantine and line fallback degrade performance,
  never correctness;
* every recovery restores a line satisfying the scheme's own
  recoverability requirement (``RecoveryEvent.line_consistent``);
* the fault-free column stays byte-for-byte clean (no retries, no aborts,
  no quarantines), so the machinery costs nothing when storage behaves.

A second, *targeted* pass forces the rare paths deterministically: a
scheduled write failure with a zero-retry budget (coordinated must abort
the 2PC round; independent drops the local checkpoint), and scheduled
silent corruption of a committed checkpoint (recovery must quarantine it
and fall back to an older line).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..analysis import TableResult, TableView
from ..chklib import RunReport
from ..fault import FaultModel, RetryPolicy, StorageFaultSpec
from ..machine import MachineParams
from ..chklib.schemes.registry import REGISTRY
from .executor import GridExecutor, run_spec
from .grid import Cell, ExperimentSpec, GridResults, SchemeSpec, WorkloadSpec
from .workloads import scaled_iters

__all__ = ["resilience_spec", "run_resilience", "RESILIENCE_SCHEMES"]

#: the five headline schemes of the sweep (paper naming), plus the third
#: protocol family (communication-induced + sender-based message logging).
RESILIENCE_SCHEMES = (
    "coord_nb",
    "coord_nbm",
    "coord_nbms",
    "indep_m_log",
    "indep_m_nolog",
    "cic",
    "indep_m_mlog",
)

#: schemes whose storage writes are checkpoint images, so a scheduled
#: unretryable write failure drops a local checkpoint (coordinated rounds
#: abort instead; msglog's early writes are message-log records, which
#: degrade to optimistic logging without touching any checkpoint).
_LOCAL_DROP_SCHEMES = ("indep_m_log", "indep_m_nolog", "cic")


def _default_workload(scale: float) -> WorkloadSpec:
    return WorkloadSpec.of(
        "sor-26",
        "sor",
        image_bytes=32 * 1024,
        n=26,
        iters=scaled_iters(10, scale),
        flops_per_cell=3000.0,
    )


def _result_key(report: RunReport) -> Any:
    return report.result["sum"]


def resilience_spec(
    fault_rates: Sequence[float] = (0.0, 0.02, 0.10),
    seed: int = 0,
    machine: Optional[MachineParams] = None,
    workload: Optional[WorkloadSpec] = None,
    scale: float = 1.0,
) -> ExperimentSpec:
    """The full resilience sweep (deterministic per *seed*)."""
    machine = machine or MachineParams(n_nodes=4)
    workload = workload or _default_workload(scale)
    rates = sorted(fault_rates)
    baseline = Cell(workload=workload, machine=machine, seed=seed)

    def cells_for(results: GridResults):
        T = results[baseline].sim_time
        times = (T / 4, T / 2)
        skew = T / 50

        def scheme(name: str) -> SchemeSpec:
            if REGISTRY.skewed(name):
                return SchemeSpec.of(name, times, skew=skew)
            return SchemeSpec.of(name, times)

        def cell(name: str, model: FaultModel) -> Cell:
            return Cell(
                workload=workload,
                scheme=scheme(name),
                machine=machine,
                seed=seed,
                fault=model,
            )

        sweep = {
            (name, p): cell(
                name,
                FaultModel(
                    machine_crash_times=(0.8 * T,),
                    storage=StorageFaultSpec(
                        write_fail_p=p, read_fail_p=p, corrupt_p=p / 2
                    ),
                ),
            )
            for name in RESILIENCE_SCHEMES
            for p in rates
        }
        # targeted: the second storage write fails with no retry budget —
        # the cleanest way to force an abort (coordinated) / a drop
        # (independent)
        write_failure = {
            name: cell(
                name,
                FaultModel(
                    machine_crash_times=(0.8 * T,),
                    storage=StorageFaultSpec(fail_writes_at=(2,)),
                    retry=RetryPolicy(max_retries=0),
                ),
            )
            for name in RESILIENCE_SCHEMES
        }
        # targeted: rank 1's second checkpoint rots after commit; the
        # crash then forces quarantine + fallback to an older line
        corruption = {
            name: cell(
                name,
                FaultModel(
                    machine_crash_times=(0.9 * T,),
                    storage=StorageFaultSpec(corrupt_ckpts=((1, 2),)),
                ),
            )
            for name in RESILIENCE_SCHEMES
        }
        return sweep, write_failure, corruption

    def plan(results: GridResults):
        sweep, write_failure, corruption = cells_for(results)
        return (
            list(sweep.values())
            + list(write_failure.values())
            + list(corruption.values())
        )

    def reduce(results: GridResults) -> TableResult:
        T = results[baseline].sim_time
        expected = _result_key(results[baseline])
        sweep_cells, wf_cells, corr_cells = cells_for(results)
        sweep: Dict[str, Dict[float, RunReport]] = {}
        for (name, p), c in sweep_cells.items():
            sweep.setdefault(name, {})[p] = results[c]
        write_failure = {n: results[c] for n, c in wf_cells.items()}
        corruption = {n: results[c] for n, c in corr_cells.items()}

        headers = [
            "scheme",
            "fault rate",
            "time",
            "faults w/r",
            "retries w/r",
            "aborted",
            "dropped",
            "quarantined",
            "recoveries",
        ]

        def row(name: str, label: str, rep: RunReport) -> List[str]:
            sound = all(ev.line_consistent for ev in rep.recoveries)
            return [
                name,
                label,
                f"{rep.sim_time / T:.2f}x",
                f"{rep.storage_write_faults}/{rep.storage_read_faults}",
                f"{rep.storage_write_retries}/{rep.storage_read_retries}",
                str(rep.rounds_aborted),
                str(rep.ckpt_writes_failed),
                str(rep.checkpoints_quarantined),
                f"{len(rep.recoveries)}{'' if sound else ' UNSOUND'}",
            ]

        view_sweep = TableView(
            name="resilience",
            title="R3: resilience under faulty stable storage (crash at 0.8 T)",
            headers=headers,
            rows=[
                row(name, f"p={p:g}", sweep[name][p])
                for name in RESILIENCE_SCHEMES
                for p in rates
            ],
        )
        view_targeted = TableView(
            name="resilience-targeted",
            title="R3b: targeted faults (scheduled write failure / corruption)",
            headers=headers,
            rows=[
                row(name, "write-fail", write_failure[name])
                for name in RESILIENCE_SCHEMES
            ]
            + [
                row(name, "corrupt", corruption[name])
                for name in RESILIENCE_SCHEMES
            ],
        )

        reports = (
            [r for per in sweep.values() for r in per.values()]
            + list(write_failure.values())
            + list(corruption.values())
        )
        clean = [sweep[s][0.0] for s in RESILIENCE_SCHEMES] if 0.0 in rates else []
        high = max(rates)
        hot = [sweep[s][high] for s in RESILIENCE_SCHEMES]
        coord = [
            write_failure[s]
            for s in RESILIENCE_SCHEMES
            if s.startswith("coord")
        ]
        indep = [write_failure[s] for s in _LOCAL_DROP_SCHEMES]
        mlog = write_failure["indep_m_mlog"]
        shapes = {
            # retries/aborts/quarantine degrade time, never correctness
            "all_results_exact": all(
                _result_key(r) == expected for r in reports
            ),
            # every recovery happened and restored a sound line
            "all_recoveries_sound": all(
                r.recoveries
                and all(ev.line_consistent for ev in r.recoveries)
                for r in reports
            ),
            # the machinery is free when storage behaves
            "fault_free_is_clean": all(
                r.storage_write_faults == 0
                and r.storage_read_faults == 0
                and r.storage_write_retries == 0
                and r.storage_read_retries == 0
                and r.rounds_aborted == 0
                and r.ckpt_writes_failed == 0
                and r.checkpoints_quarantined == 0
                for r in clean
            ),
            # the high-rate column actually exercised the injector ...
            "faults_injected": sum(
                r.storage_write_faults + r.storage_read_faults for r in hot
            )
            > 0,
            # ... and retries absorbed (most of) them
            "retries_absorb_faults": sum(
                r.storage_write_retries for r in hot
            )
            > 0,
            # an unretryable write failure aborts the coordinated round ...
            "coordinated_aborts_cleanly": all(
                r.rounds_aborted >= 1 for r in coord
            ),
            # ... while independent-family schemes drop the local checkpoint
            "independent_drops_locally": all(
                r.ckpt_writes_failed >= 1 and r.rounds_aborted == 0
                for r in indep
            ),
            # msglog's failed write is a message-log record: it degrades
            # to optimistic logging — no abort, no dropped checkpoint
            "mlog_degrades_to_optimistic": (
                mlog.rounds_aborted == 0 and mlog.ckpt_writes_failed == 0
            ),
            # silent corruption is caught and quarantined at recovery
            "corruption_quarantined": all(
                r.checkpoints_quarantined >= 1 for r in corruption.values()
            ),
        }
        return TableResult(
            name="resilience",
            views=[view_sweep, view_targeted],
            shapes=shapes,
            summary_lines=[
                f"{len(reports)} faulted runs, all exact: "
                f"{shapes['all_results_exact']}",
            ],
            data={
                "fault_rates": rates,
                "normal_time": T,
                "expected": expected,
                "sweep": sweep,
                "write_failure": write_failure,
                "corruption": corruption,
            },
        )

    return ExperimentSpec(
        name="resilience",
        title="R3 — resilience under faulty stable storage",
        baselines=(baseline,),
        plan=plan,
        reduce=reduce,
    )


def run_resilience(
    fault_rates: Sequence[float] = (0.0, 0.02, 0.10),
    seed: int = 0,
    machine: Optional[MachineParams] = None,
    scale: float = 1.0,
    executor: Optional[GridExecutor] = None,
) -> TableResult:
    return run_spec(
        resilience_spec(
            fault_rates=fault_rates,
            seed=seed,
            machine=machine,
            scale=scale,
        ),
        executor=executor,
    )
