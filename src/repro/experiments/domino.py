"""Recovery-side experiments (R1/R2): domino effect and storage overhead.

The paper asserts — without a table — that independent checkpointing
(a) risks the domino effect and unpredictable rollback, and (b) needs much
more stable storage even with garbage collection, while coordinated
checkpointing bounds both. These experiments measure exactly that.

R1 — crash each workload under ``Coord_NBMS`` and under ``Indep_M`` (with
and without timer skew) and report rollback distance and domino extent.
The third protocol family rides along at the same unfavourable skew:
communication-induced checkpointing (``cic``) and sender-based message
logging (``indep_m_mlog``) must both eliminate the domino effect the
skewed unlogged independent column exhibits.

R2 — run ``Indep_M`` with and without garbage collection and ``Coord_NBMS``
and report peak checkpoints and peak stable-storage bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis import TableResult, TableView
from ..fault.model import FaultModel
from ..machine import MachineParams
from .executor import GridExecutor, run_spec
from .grid import Cell, ExperimentSpec, GridResults, SchemeSpec, WorkloadSpec, interval_times
from .workloads import table23_workloads

__all__ = [
    "DominoRow",
    "domino_spec",
    "run_domino",
    "StorageRow",
    "storage_overhead_spec",
    "run_storage_overhead",
]


@dataclass
class DominoRow:
    label: str
    scheme: str
    checkpoints_before_crash: int
    rollback_checkpoints: float  #: mean over ranks
    domino_extent: float
    lost_time_mean: float
    recovered_exactly: bool


def _result_scalar(report) -> object:
    r = report.result
    for key in ("sum", "magnetisation", "distsum", "pos_sum", "x_sum",
                "optimum", "solutions"):
        if key in r:
            return r[key]
    raise AssertionError(f"no scalar in {r}")


def _default_recovery_workloads(scale: float) -> List[WorkloadSpec]:
    return [
        w for w in table23_workloads(scale) if w.label in ("sor-320", "ising-288")
    ]


def domino_spec(
    workloads: Optional[List[WorkloadSpec]] = None,
    seed: int = 0,
    machine: Optional[MachineParams] = None,
    rounds: int = 3,
    scale: float = 1.0,
) -> ExperimentSpec:
    """R1: rollback behaviour when a crash hits late in the run."""
    workloads = (
        workloads
        if workloads is not None
        else _default_recovery_workloads(scale)
    )
    machine = machine or MachineParams.xplorer8()
    baselines = tuple(
        Cell(workload=w, machine=machine, seed=seed) for w in workloads
    )

    def cells_for(results: GridResults):
        grid = []
        for w, base in zip(workloads, baselines):
            t = results[base].sim_time
            interval, times = interval_times(t, rounds)
            crash = FaultModel.machine_crash(0.9 * t)
            variants = (
                ("coord_nbms", SchemeSpec.of("coord_nbms", times)),
                (
                    "indep_m(aligned)",
                    SchemeSpec.of("indep_m", times, skew=interval / 500),
                ),
                (
                    "indep_m(skew)",
                    SchemeSpec.of("indep_m", times, skew=interval / 2),
                ),
                # the third family, at the same unfavourable skew: forced
                # checkpoints (cic) / stable message logs (mlog) bound the
                # rollback that dominos in the unlogged column above.
                ("cic(skew)", SchemeSpec.of("cic", times, skew=interval / 2)),
                (
                    "mlog(skew)",
                    SchemeSpec.of(
                        "indep_m_mlog", times, skew=interval / 2
                    ),
                ),
            )
            row = [
                (
                    name,
                    Cell(
                        workload=w,
                        scheme=spec,
                        machine=machine,
                        seed=seed,
                        fault=crash,
                    ),
                )
                for name, spec in variants
            ]
            grid.append((w, base, row))
        return grid

    def plan(results: GridResults):
        return [c for _, _, row in cells_for(results) for _, c in row]

    def reduce(results: GridResults) -> TableResult:
        rows: List[DominoRow] = []
        for w, base, row in cells_for(results):
            expected = _result_scalar(results[base])
            for scheme_name, cell in row:
                report = results[cell]
                rec = report.recoveries[0]
                n = report.n_nodes
                rows.append(
                    DominoRow(
                        label=w.label,
                        scheme=scheme_name,
                        checkpoints_before_crash=rounds,
                        rollback_checkpoints=(
                            sum(rec.rollback_checkpoints.values()) / n
                        ),
                        domino_extent=rec.domino_extent,
                        lost_time_mean=sum(rec.lost_time.values()) / n,
                        recovered_exactly=_result_scalar(report) == expected,
                    )
                )
        view = TableView(
            name="domino",
            title="R1: rollback behaviour at a crash",
            headers=[
                "application",
                "scheme",
                "ckpts",
                "rollback (ckpts)",
                "domino extent",
                "lost time (s)",
                "exact",
            ],
            rows=[
                [
                    r.label,
                    r.scheme,
                    r.checkpoints_before_crash,
                    f"{r.rollback_checkpoints:.2f}",
                    f"{r.domino_extent:.2f}",
                    f"{r.lost_time_mean:.1f}",
                    "yes" if r.recovered_exactly else "NO",
                ]
                for r in rows
            ],
        )
        coord = [r for r in rows if r.scheme.startswith("coord")]
        indep_skewed = [r for r in rows if r.scheme == "indep_m(skew)"]
        third_family = [
            r for r in rows if r.scheme in ("cic(skew)", "mlog(skew)")
        ]
        return TableResult(
            name="domino",
            views=[view],
            shapes={
                "all_recoveries_exact": all(
                    r.recovered_exactly for r in rows
                ),
                # coordinated: predictable, bounded rollback (≤ 1 interval)
                "coordinated_bounded_rollback": all(
                    r.rollback_checkpoints <= 1.0 and r.domino_extent == 0.0
                    for r in coord
                ),
                # skewed independent without logging dominos somewhere
                "independent_domino_occurs": any(
                    r.domino_extent == 1.0 for r in indep_skewed
                ),
                # the third family kills the domino at the same skew:
                # forced checkpoints / stable logs keep every rank off
                # index 0 however the timers drift.
                "third_family_no_domino": bool(third_family)
                and all(r.domino_extent == 0.0 for r in third_family),
            },
            summary_lines=[
                f"{len(rows)} crash recoveries, all exact: "
                f"{all(r.recovered_exactly for r in rows)}",
            ],
            data={"rows": rows},
        )

    return ExperimentSpec(
        name="domino",
        title="R1 — rollback behaviour at a crash",
        baselines=baselines,
        plan=plan,
        reduce=reduce,
    )


def run_domino(
    workloads: Optional[List[WorkloadSpec]] = None,
    seed: int = 0,
    machine: Optional[MachineParams] = None,
    rounds: int = 3,
    scale: float = 1.0,
    executor: Optional[GridExecutor] = None,
) -> TableResult:
    return run_spec(
        domino_spec(
            workloads=workloads,
            seed=seed,
            machine=machine,
            rounds=rounds,
            scale=scale,
        ),
        executor=executor,
    )


@dataclass
class StorageRow:
    label: str
    scheme: str
    peak_checkpoints: int
    peak_bytes: float
    final_bytes: float
    bytes_written: float


_STORAGE_VARIANTS = ("coord_nbms", "indep_m", "indep_m+gc", "indep_m+log+gc")


def storage_overhead_spec(
    workloads: Optional[List[WorkloadSpec]] = None,
    seed: int = 0,
    machine: Optional[MachineParams] = None,
    rounds: int = 4,
    scale: float = 1.0,
) -> ExperimentSpec:
    """R2: peak stable-storage footprint per scheme."""
    workloads = (
        workloads
        if workloads is not None
        else _default_recovery_workloads(scale)
    )
    machine = machine or MachineParams.xplorer8()
    baselines = tuple(
        Cell(workload=w, machine=machine, seed=seed) for w in workloads
    )

    def cells_for(results: GridResults):
        grid = []
        for w, base in zip(workloads, baselines):
            interval, times = interval_times(results[base].sim_time, rounds)
            skew = 0.08 * interval
            variants = (
                ("coord_nbms", SchemeSpec.of("coord_nbms", times)),
                ("indep_m", SchemeSpec.of("indep_m", times, skew=skew)),
                (
                    "indep_m+gc",
                    SchemeSpec.of("indep_m", times, skew=skew, gc=True),
                ),
                (
                    "indep_m+log+gc",
                    SchemeSpec.of(
                        "indep_m", times, skew=skew, logging=True, gc=True
                    ),
                ),
            )
            row = [
                (
                    name,
                    Cell(workload=w, scheme=spec, machine=machine, seed=seed),
                )
                for name, spec in variants
            ]
            grid.append((w, row))
        return grid

    def plan(results: GridResults):
        return [c for _, row in cells_for(results) for _, c in row]

    def reduce(results: GridResults) -> TableResult:
        rows: List[StorageRow] = []
        for w, row in cells_for(results):
            for scheme_name, cell in row:
                report = results[cell]
                rows.append(
                    StorageRow(
                        label=w.label,
                        scheme=scheme_name,
                        peak_checkpoints=report.storage_peak_checkpoints,
                        peak_bytes=report.storage_peak_bytes,
                        final_bytes=report.storage_final_bytes,
                        bytes_written=report.storage_bytes_written,
                    )
                )
        view = TableView(
            name="storage-overhead",
            title="R2: stable-storage overhead",
            headers=[
                "application",
                "scheme",
                "peak ckpts",
                "peak MB",
                "final MB",
                "written MB",
            ],
            rows=[
                [
                    r.label,
                    r.scheme,
                    r.peak_checkpoints,
                    f"{r.peak_bytes / 1e6:.2f}",
                    f"{r.final_bytes / 1e6:.2f}",
                    f"{r.bytes_written / 1e6:.2f}",
                ]
                for r in rows
            ],
        )
        by_scheme: Dict[str, List[StorageRow]] = {}
        for r in rows:
            by_scheme.setdefault(r.scheme, []).append(r)
        coord = by_scheme.get("coord_nbms", [])
        indep = by_scheme.get("indep_m", [])
        indep_gc = by_scheme.get("indep_m+gc", [])
        log_gc = by_scheme.get("indep_m+log+gc", [])
        n = 8
        return TableResult(
            name="storage-overhead",
            views=[view],
            shapes={
                # coordinated holds at most two checkpoints per process
                "coordinated_bounded": all(
                    r.peak_checkpoints <= 2 * n for r in coord
                ),
                # uncollected independent chains grow with every round
                "independent_accumulates": all(
                    ri.peak_checkpoints > rc.peak_checkpoints
                    for ri, rc in zip(indep, coord)
                ),
                # the paper's claim: without message logging, GC cannot
                # advance past the (domino-prone) transitless line —
                # several checkpoints stay in stable storage anyway.
                "gc_without_logs_ineffective": all(
                    rg.peak_checkpoints >= rc.peak_checkpoints
                    and rg.peak_bytes >= rc.peak_bytes
                    for rg, rc in zip(indep_gc, coord)
                ),
                # extension finding: logging-based (orphan-tolerant)
                # recovery lets GC keep essentially one checkpoint per
                # process — the modern fix the paper's citations
                # anticipate.
                "logging_gc_collects": all(
                    rl.peak_checkpoints < ri.peak_checkpoints
                    for rl, ri in zip(log_gc, indep)
                ),
            },
            summary_lines=[
                "peak checkpoints by scheme: "
                + ", ".join(
                    f"{s}={max((r.peak_checkpoints for r in by_scheme.get(s, [])), default=0)}"
                    for s in _STORAGE_VARIANTS
                ),
            ],
            data={"rows": rows, "by_scheme": by_scheme},
        )

    return ExperimentSpec(
        name="storage-overhead",
        title="R2 — stable-storage overhead",
        baselines=baselines,
        plan=plan,
        reduce=reduce,
    )


def run_storage_overhead(
    workloads: Optional[List[WorkloadSpec]] = None,
    seed: int = 0,
    machine: Optional[MachineParams] = None,
    rounds: int = 4,
    scale: float = 1.0,
    executor: Optional[GridExecutor] = None,
) -> TableResult:
    return run_spec(
        storage_overhead_spec(
            workloads=workloads,
            seed=seed,
            machine=machine,
            rounds=rounds,
            scale=scale,
        ),
        executor=executor,
    )
