"""Recovery-side experiments (R1/R2): domino effect and storage overhead.

The paper asserts — without a table — that independent checkpointing
(a) risks the domino effect and unpredictable rollback, and (b) needs much
more stable storage even with garbage collection, while coordinated
checkpointing bounds both. These experiments measure exactly that.

R1 — crash each workload under ``Coord_NBMS`` and under ``Indep_M`` (with
and without timer skew) and report rollback distance and domino extent.

R2 — run ``Indep_M`` with and without garbage collection and ``Coord_NBMS``
and report peak checkpoints and peak stable-storage bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis import render_table
from ..chklib import CheckpointRuntime, CoordinatedScheme, FaultPlan, IndependentScheme
from ..machine import MachineParams
from .workloads import Workload, table23_workloads

__all__ = ["DominoResult", "run_domino", "StorageOverheadResult", "run_storage_overhead"]


@dataclass
class DominoRow:
    label: str
    scheme: str
    checkpoints_before_crash: int
    rollback_checkpoints: float  #: mean over ranks
    domino_extent: float
    lost_time_mean: float
    recovered_exactly: bool


@dataclass
class DominoResult:
    rows: List[DominoRow]

    def render(self) -> str:
        headers = [
            "application",
            "scheme",
            "ckpts",
            "rollback (ckpts)",
            "domino extent",
            "lost time (s)",
            "exact",
        ]
        body = [
            [
                r.label,
                r.scheme,
                r.checkpoints_before_crash,
                f"{r.rollback_checkpoints:.2f}",
                f"{r.domino_extent:.2f}",
                f"{r.lost_time_mean:.1f}",
                "yes" if r.recovered_exactly else "NO",
            ]
            for r in self.rows
        ]
        return render_table(headers, body, title="R1: rollback behaviour at a crash")

    def shape_holds(self) -> Dict[str, bool]:
        coord = [r for r in self.rows if r.scheme.startswith("coord")]
        indep_skewed = [r for r in self.rows if r.scheme == "indep_m(skew)"]
        return {
            "all_recoveries_exact": all(r.recovered_exactly for r in self.rows),
            # coordinated: predictable, bounded rollback (≤ 1 interval)
            "coordinated_bounded_rollback": all(
                r.rollback_checkpoints <= 1.0 and r.domino_extent == 0.0
                for r in coord
            ),
            # skewed independent without logging dominos somewhere
            "independent_domino_occurs": any(
                r.domino_extent == 1.0 for r in indep_skewed
            ),
        }


def _result_scalar(report) -> object:
    r = report.result
    for key in ("sum", "magnetisation", "distsum", "pos_sum", "x_sum",
                "optimum", "solutions"):
        if key in r:
            return r[key]
    raise AssertionError(f"no scalar in {r}")


def run_domino(
    workloads: Optional[List[Workload]] = None,
    seed: int = 0,
    machine: Optional[MachineParams] = None,
    rounds: int = 3,
) -> DominoResult:
    workloads = (
        workloads
        if workloads is not None
        else [w for w in table23_workloads() if w.label in ("sor-320", "ising-288")]
    )
    machine = machine or MachineParams.xplorer8()
    rows: List[DominoRow] = []
    for workload in workloads:
        normal = CheckpointRuntime(workload.make(), machine=machine, seed=seed).run()
        t = normal.sim_time
        interval = t / (rounds + 1.5)
        times = [interval * (i + 1) for i in range(rounds)]
        crash = FaultPlan.single(0.9 * t)
        expected = _result_scalar(normal)
        for scheme_name, scheme in (
            ("coord_nbms", CoordinatedScheme.NBMS(times)),
            (
                "indep_m(aligned)",
                IndependentScheme.IndepM(times, skew=interval / 500),
            ),
            (
                "indep_m(skew)",
                IndependentScheme.IndepM(times, skew=interval / 2),
            ),
        ):
            report = CheckpointRuntime(
                workload.make(),
                scheme=scheme,
                machine=machine,
                seed=seed,
                fault_plan=crash,
            ).run()
            rec = report.recoveries[0]
            n = report.n_nodes
            rows.append(
                DominoRow(
                    label=workload.label,
                    scheme=scheme_name,
                    checkpoints_before_crash=rounds,
                    rollback_checkpoints=(
                        sum(rec.rollback_checkpoints.values()) / n
                    ),
                    domino_extent=rec.domino_extent,
                    lost_time_mean=sum(rec.lost_time.values()) / n,
                    recovered_exactly=_result_scalar(report) == expected,
                )
            )
    return DominoResult(rows=rows)


@dataclass
class StorageRow:
    label: str
    scheme: str
    peak_checkpoints: int
    peak_bytes: float
    final_bytes: float
    bytes_written: float


@dataclass
class StorageOverheadResult:
    rows: List[StorageRow]

    def render(self) -> str:
        headers = [
            "application",
            "scheme",
            "peak ckpts",
            "peak MB",
            "final MB",
            "written MB",
        ]
        body = [
            [
                r.label,
                r.scheme,
                r.peak_checkpoints,
                f"{r.peak_bytes / 1e6:.2f}",
                f"{r.final_bytes / 1e6:.2f}",
                f"{r.bytes_written / 1e6:.2f}",
            ]
            for r in self.rows
        ]
        return render_table(headers, body, title="R2: stable-storage overhead")

    def shape_holds(self) -> Dict[str, bool]:
        by_scheme: Dict[str, List[StorageRow]] = {}
        for r in self.rows:
            by_scheme.setdefault(r.scheme, []).append(r)
        coord = by_scheme.get("coord_nbms", [])
        indep = by_scheme.get("indep_m", [])
        indep_gc = by_scheme.get("indep_m+gc", [])
        log_gc = by_scheme.get("indep_m+log+gc", [])
        n = 8
        return {
            # coordinated holds at most two checkpoints per process
            "coordinated_bounded": all(
                r.peak_checkpoints <= 2 * n for r in coord
            ),
            # uncollected independent chains grow with every round
            "independent_accumulates": all(
                ri.peak_checkpoints > rc.peak_checkpoints
                for ri, rc in zip(indep, coord)
            ),
            # the paper's claim: without message logging, GC cannot advance
            # past the (domino-prone) transitless line — several
            # checkpoints stay in stable storage anyway.
            "gc_without_logs_ineffective": all(
                rg.peak_checkpoints >= rc.peak_checkpoints
                and rg.peak_bytes >= rc.peak_bytes
                for rg, rc in zip(indep_gc, coord)
            ),
            # extension finding: logging-based (orphan-tolerant) recovery
            # lets GC keep essentially one checkpoint per process — the
            # modern fix the paper's citations anticipate.
            "logging_gc_collects": all(
                rl.peak_checkpoints < ri.peak_checkpoints
                for rl, ri in zip(log_gc, indep)
            ),
        }


def run_storage_overhead(
    workloads: Optional[List[Workload]] = None,
    seed: int = 0,
    machine: Optional[MachineParams] = None,
    rounds: int = 4,
) -> StorageOverheadResult:
    workloads = (
        workloads
        if workloads is not None
        else [w for w in table23_workloads() if w.label in ("sor-320", "ising-288")]
    )
    machine = machine or MachineParams.xplorer8()
    rows: List[StorageRow] = []
    for workload in workloads:
        normal = CheckpointRuntime(workload.make(), machine=machine, seed=seed).run()
        interval = normal.sim_time / (rounds + 1.5)
        times = [interval * (i + 1) for i in range(rounds)]
        skew = 0.08 * interval
        for scheme_name, scheme in (
            ("coord_nbms", CoordinatedScheme.NBMS(times)),
            ("indep_m", IndependentScheme.IndepM(times, skew=skew)),
            (
                "indep_m+gc",
                IndependentScheme.IndepM(times, skew=skew, gc=True),
            ),
            (
                "indep_m+log+gc",
                IndependentScheme.IndepM(times, skew=skew, logging=True, gc=True),
            ),
        ):
            report = CheckpointRuntime(
                workload.make(), scheme=scheme, machine=machine, seed=seed
            ).run()
            rows.append(
                StorageRow(
                    label=workload.label,
                    scheme=scheme_name,
                    peak_checkpoints=report.storage_peak_checkpoints,
                    peak_bytes=report.storage_peak_bytes,
                    final_bytes=report.storage_final_bytes,
                    bytes_written=report.storage_bytes_written,
                )
            )
    return StorageOverheadResult(rows=rows)
